// Package syncheck decides whether the message-passing behaviour
// recorded in a trace is synchronizable: could the same send/receive
// pairs have occurred under rendezvous (synchronous) communication,
// where every send blocks until its receive? The criterion is the
// classic crown test from the theory of distributed computations (and
// the automata-based mailbox-synchronizability line of work): build the
// causal order over communication events — per-task program order plus
// a send-happens-before-its-receive edge for every matched message —
// then relate messages m ⊏ m' when send(m) causally precedes recv(m').
// The computation is synchronizable iff this relation is acyclic
// (a cycle of length ≥ 2 is a "crown": a set of messages that cannot
// all be flattened into atomic send-receive rendezvous points).
//
// The checker replays trace events in log order, which any actual
// execution guarantees is a linearization of causality, matching the
// k-th receive on a queue to the k-th send on it (both mailboxes and
// virtual links deliver FIFO per queue). A receive with no earlier
// send on its queue cannot come from a FIFO queue at all and is
// reported as an unmatched receive — a violation regardless of
// synchronizability. ISR injections (trace kind "interrupt" whose
// detail is a bare queue name) count as sends by the pseudo-task
// "isr"; dropped injections ("<queue> drop") transfer nothing.
package syncheck

import (
	"fmt"
	"strings"

	"emeralds/internal/trace"
)

// QueueStat summarizes one queue's traffic.
type QueueStat struct {
	Queue     string `json:"queue"`
	Sends     int    `json:"sends"`
	Recvs     int    `json:"recvs"`
	Unmatched int    `json:"unmatched"` // receives with no prior send (FIFO violation)
}

// Report is the checker's verdict over one trace.
type Report struct {
	Messages       int         `json:"messages"` // matched send/receive pairs
	Sends          int         `json:"sends"`
	Recvs          int         `json:"recvs"`
	Unmatched      int         `json:"unmatched"`
	Synchronizable bool        `json:"synchronizable"`
	Skipped        bool        `json:"skipped,omitempty"` // too many messages to check
	Crown          []string    `json:"crown,omitempty"`   // witness cycle, one message per line
	Queues         []QueueStat `json:"queues,omitempty"`
}

// OK reports whether the trace passed: synchronizable (or skipped) with
// no unmatched receives.
func (r *Report) OK() bool {
	return r.Unmatched == 0 && (r.Synchronizable || r.Skipped)
}

// String renders the report as a short human-readable block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "syncheck: %d messages (%d sends, %d recvs, %d unmatched) over %d queues\n",
		r.Messages, r.Sends, r.Recvs, r.Unmatched, len(r.Queues))
	for _, q := range r.Queues {
		fmt.Fprintf(&b, "  %-12s sends=%-5d recvs=%-5d unmatched=%d\n", q.Queue, q.Sends, q.Recvs, q.Unmatched)
	}
	switch {
	case r.Skipped:
		fmt.Fprintf(&b, "  verdict: SKIPPED (more than %d messages)\n", MaxMessages)
	case r.Synchronizable && r.Unmatched == 0:
		b.WriteString("  verdict: synchronizable (crown-free)\n")
	case r.Synchronizable:
		b.WriteString("  verdict: NOT OK (unmatched receives)\n")
	default:
		b.WriteString("  verdict: NOT synchronizable, crown witness:\n")
		for _, m := range r.Crown {
			fmt.Fprintf(&b, "    %s\n", m)
		}
	}
	return b.String()
}

// MaxMessages bounds the crown check (it is quadratic in messages);
// larger traces report Skipped rather than stalling a campaign.
const MaxMessages = 4096

// message is one matched communication: indexes into the per-task
// event vector clocks of its send and receive.
type message struct {
	queue    string
	sendTask string
	recvTask string
	seq      int      // FIFO position on its queue
	sendVC   []uint32 // clock at the send event
	recvVC   []uint32 // clock at the receive event
	hasRecv  bool
}

// Check analyzes the communication events of a trace log.
func Check(events []trace.Event) *Report {
	rep := &Report{Synchronizable: true}

	// Task name → vector-clock index. The trace's Task field is the
	// task name; "isr" covers interrupt-context sends.
	taskIdx := map[string]int{}
	idxOf := func(name string) int {
		i, ok := taskIdx[name]
		if !ok {
			i = len(taskIdx)
			taskIdx[name] = i
		}
		return i
	}
	// First pass: collect communication events and the task universe,
	// so vector clocks have a fixed width on the second pass.
	type comm struct {
		send  bool
		queue string
		task  string
		pos   int
	}
	var comms []comm
	queueSeen := map[string]bool{}
	for pos, ev := range events {
		switch ev.Kind {
		case trace.MsgSend, trace.VLinkSend:
			comms = append(comms, comm{send: true, queue: ev.Detail, task: ev.Task, pos: pos})
			idxOf(ev.Task)
			queueSeen[ev.Detail] = true
		case trace.MsgRecv, trace.VLinkRecv:
			comms = append(comms, comm{send: false, queue: ev.Detail, task: ev.Task, pos: pos})
			idxOf(ev.Task)
			queueSeen[ev.Detail] = true
		case trace.Interrupt:
			// ISR mailbox injection traces as an interrupt whose detail
			// is the bare queue name ("<queue> drop" delivered nothing,
			// "vector N" is not a queue).
			if ev.Detail != "" && !strings.ContainsRune(ev.Detail, ' ') {
				comms = append(comms, comm{send: true, queue: ev.Detail, task: ev.Task, pos: pos})
				idxOf(ev.Task)
				queueSeen[ev.Detail] = true
			}
		}
	}
	// Injection heuristics can misfire on traces where an interrupt
	// detail names something that is not a queue: only keep interrupt
	// sends whose queue also appears in a real send/recv event. (A
	// queue touched only by ISRs and never received from contributes
	// nothing to synchronizability anyway.)
	realQueue := map[string]bool{}
	for _, c := range comms {
		if !c.send {
			realQueue[c.queue] = true
		}
	}
	width := len(taskIdx)
	clocks := make(map[string][]uint32, width)
	pending := map[string][]*message{} // queue → sent, not yet received
	var msgs []*message
	qstats := map[string]*QueueStat{}
	var qorder []string
	stat := func(q string) *QueueStat {
		s := qstats[q]
		if s == nil {
			s = &QueueStat{Queue: q}
			qstats[q] = s
			qorder = append(qorder, q)
		}
		return s
	}

	tick := func(task string) []uint32 {
		vc := clocks[task]
		if vc == nil {
			vc = make([]uint32, width)
			clocks[task] = vc
		}
		vc[taskIdx[task]]++
		return vc
	}
	join := func(dst, src []uint32) {
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}

	for _, c := range comms {
		isISR := events[c.pos].Kind == trace.Interrupt
		if isISR && !realQueue[c.queue] {
			continue
		}
		s := stat(c.queue)
		if c.send {
			s.Sends++
			rep.Sends++
			vc := tick(c.task)
			m := &message{queue: c.queue, sendTask: c.task, seq: s.Sends,
				sendVC: append([]uint32(nil), vc...)}
			pending[c.queue] = append(pending[c.queue], m)
			msgs = append(msgs, m)
		} else {
			s.Recvs++
			rep.Recvs++
			q := pending[c.queue]
			if len(q) == 0 {
				s.Unmatched++
				rep.Unmatched++
				tick(c.task)
				continue
			}
			m := q[0]
			pending[c.queue] = q[1:]
			// Receive inherits the send's causal past before ticking.
			vc := clocks[c.task]
			if vc == nil {
				vc = make([]uint32, width)
				clocks[c.task] = vc
			}
			join(vc, m.sendVC)
			vc = tick(c.task)
			m.recvTask = c.task
			m.recvVC = append([]uint32(nil), vc...)
			m.hasRecv = true
		}
	}

	for _, q := range qorder {
		rep.Queues = append(rep.Queues, *qstats[q])
	}

	matched := 0
	for _, m := range msgs {
		if m.hasRecv {
			matched++
		}
	}
	rep.Messages = matched
	if matched > MaxMessages {
		rep.Skipped = true
		return rep
	}

	// Crown detection: edge m → m' iff send(m) ⩽ recv(m') causally and
	// m ≠ m'. Only matched messages participate (an unreceived send has
	// no recv event to precede).
	var nodes []*message
	for _, m := range msgs {
		if m.hasRecv {
			nodes = append(nodes, m)
		}
	}
	n := len(nodes)
	leq := func(a, b []uint32) bool {
		for i := range a {
			if a[i] > b[i] {
				return false
			}
		}
		return true
	}
	adj := func(i, j int) bool {
		return i != j && leq(nodes[i].sendVC, nodes[j].recvVC)
	}
	// Iterative DFS with colors; a back edge is a crown.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, n)
	parent := make([]int, n)
	for start := 0; start < n && rep.Synchronizable; start++ {
		if color[start] != white {
			continue
		}
		stack := []int{start}
		parent[start] = -1
		for len(stack) > 0 && rep.Synchronizable {
			i := stack[len(stack)-1]
			if color[i] == white {
				color[i] = grey
			} else if color[i] == grey {
				color[i] = black
				stack = stack[:len(stack)-1]
				continue
			} else {
				stack = stack[:len(stack)-1]
				continue
			}
			for j := 0; j < n; j++ {
				if !adj(i, j) {
					continue
				}
				switch color[j] {
				case white:
					parent[j] = i
					stack = append(stack, j)
				case grey:
					// Crown found: walk parents from i back to j.
					rep.Synchronizable = false
					cycle := []int{j}
					for v := i; v != j && v != -1; v = parent[v] {
						cycle = append(cycle, v)
					}
					for x := len(cycle) - 1; x >= 0; x-- {
						m := nodes[cycle[x]]
						rep.Crown = append(rep.Crown, fmt.Sprintf(
							"%s→%s via %s (msg #%d)", m.sendTask, m.recvTask, m.queue, m.seq))
					}
				}
				if !rep.Synchronizable {
					break
				}
			}
		}
	}
	return rep
}

// CheckRaw parses trace JSON (a raw log or a Perfetto export with an
// embedded raw log) and checks it.
func CheckRaw(data []byte) (*Report, error) {
	events, _, err := trace.ParseJSON(data)
	if err != nil {
		return nil, err
	}
	return Check(events), nil
}
