package ipc

import (
	"testing"
	"testing/quick"
)

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox(0, "m", 4)
	for i := int64(1); i <= 4; i++ {
		m.Push(Msg{Val: i, Size: 8})
	}
	if !m.Full() {
		t.Error("should be full")
	}
	for i := int64(1); i <= 4; i++ {
		got, ok := m.Pop()
		if !ok || got.Val != i {
			t.Fatalf("pop = %d/%v, want %d", got.Val, ok, i)
		}
	}
	if !m.Empty() {
		t.Error("should be empty")
	}
}

func TestMailboxWrapAround(t *testing.T) {
	m := NewMailbox(0, "m", 3)
	for round := int64(0); round < 10; round++ {
		m.Push(Msg{Val: round})
		m.Push(Msg{Val: round + 100})
		if got, ok := m.Pop(); !ok || got.Val != round {
			t.Fatal("wrap order broken")
		}
		if got, ok := m.Pop(); !ok || got.Val != round+100 {
			t.Fatal("wrap order broken")
		}
	}
}

// TestMailboxPushFullRefused pins the block-or-error semantics the
// fuzz campaign's producer/consumer graphs rely on: a push into a full
// mailbox is refused (the kernel then blocks the sender, an ISR drops
// the sample) and must neither panic nor disturb the queued messages.
func TestMailboxPushFullRefused(t *testing.T) {
	m := NewMailbox(0, "m", 1)
	if !m.Push(Msg{Val: 1}) {
		t.Fatal("push into empty mailbox refused")
	}
	if m.Push(Msg{Val: 2}) {
		t.Error("push into full mailbox accepted")
	}
	if got, ok := m.Pop(); !ok || got.Val != 1 {
		t.Errorf("refused push corrupted the queue: %d/%v", got.Val, ok)
	}
}

// TestMailboxPopEmptyRefused is the receive-side edge: popping an
// empty mailbox reports ok=false instead of panicking, and the mailbox
// stays usable.
func TestMailboxPopEmptyRefused(t *testing.T) {
	m := NewMailbox(0, "m", 1)
	if _, ok := m.Pop(); ok {
		t.Error("pop from empty mailbox succeeded")
	}
	m.Push(Msg{Val: 7})
	if got, ok := m.Pop(); !ok || got.Val != 7 {
		t.Errorf("pop after refused pop = %d/%v", got.Val, ok)
	}
	if _, ok := m.Pop(); ok {
		t.Error("second pop from drained mailbox succeeded")
	}
}

func TestMailboxMinimumCapacity(t *testing.T) {
	m := NewMailbox(0, "m", 0)
	if m.Cap() != 1 {
		t.Errorf("cap = %d", m.Cap())
	}
}

func TestMailboxLen(t *testing.T) {
	m := NewMailbox(0, "m", 5)
	for i := 0; i < 3; i++ {
		m.Push(Msg{})
	}
	if m.Len() != 3 {
		t.Errorf("len = %d", m.Len())
	}
	m.Pop()
	if m.Len() != 2 {
		t.Errorf("len = %d", m.Len())
	}
}

// --- state messages ---------------------------------------------------

func TestStateMessageFreshest(t *testing.T) {
	s := NewStateMessage(0, "s", 3, 8)
	if _, ok := s.Read(); ok {
		t.Error("unwritten state message returned a value")
	}
	for v := int64(1); v <= 10; v++ {
		s.Write(v)
		got, ok := s.Read()
		if !ok || got != v {
			t.Fatalf("read = %d/%v after writing %d", got, ok, v)
		}
	}
	if s.Writes() != 10 || s.Reads() != 10 {
		t.Errorf("writes=%d reads=%d", s.Writes(), s.Reads())
	}
}

func TestStateMessageMinimums(t *testing.T) {
	s := NewStateMessage(0, "s", 0, 0)
	if s.Depth() != 2 || s.Size() != 8 {
		t.Errorf("depth=%d size=%d", s.Depth(), s.Size())
	}
}

func TestMinDepth(t *testing.T) {
	if MinDepth(0) != 2 || MinDepth(3) != 5 || MinDepth(-1) != 2 {
		t.Error("MinDepth formula wrong")
	}
}

// TestStateMessageTornReadDetected drives the step API adversarially:
// with a buffer of depth N, a reader that is preempted by ≥ N writes
// mid-copy observes a torn slot, and Finish reports it.
func TestStateMessageTornReadDetected(t *testing.T) {
	const depth = 3
	s := NewStateMessage(0, "s", depth, 16)
	s.Write(1)
	r, ok := s.BeginRead()
	if !ok {
		t.Fatal("nothing to read")
	}
	r.Step() // copy one byte, then get preempted…
	// …by exactly `depth` writer activations: the last one laps onto
	// the slot being read.
	for v := int64(2); v < 2+depth; v++ {
		s.Write(v)
	}
	if _, consistent := r.Finish(); consistent {
		t.Error("lapped read reported consistent")
	}
}

// TestStateMessageDepthBoundHolds is the §7 consistency property: with
// depth ≥ MinDepth(w), w writer activations during a read can never
// tear it.
func TestStateMessageDepthBoundHolds(t *testing.T) {
	f := func(wRaw, depthExtra uint8) bool {
		w := int(wRaw % 6)
		depth := MinDepth(w) + int(depthExtra%3)
		s := NewStateMessage(0, "s", depth, 16)
		s.Write(1)
		r, ok := s.BeginRead()
		if !ok {
			return false
		}
		r.Step()
		for v := 0; v < w; v++ {
			s.Write(int64(v + 2))
		}
		_, consistent := r.Finish()
		return consistent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestStateMessageInterleavedWriteRead interleaves single-byte write
// and read steps in every alignment; within the depth bound the reader
// must always see a complete, previously published payload.
func TestStateMessageInterleavedWriteRead(t *testing.T) {
	const size = 8
	for offset := 0; offset < size; offset++ {
		s := NewStateMessage(0, "s", 3, size)
		w0 := s.BeginWrite()
		w0.SetWord(0x0101010101010101)
		w0.Commit()

		r, _ := s.BeginRead()
		for i := 0; i < offset; i++ {
			r.Step()
		}
		// One full writer activation in the middle of the read.
		w1 := s.BeginWrite()
		w1.SetWord(0x0202020202020202)
		w1.Commit()

		buf, consistent := r.Finish()
		if !consistent {
			t.Fatalf("offset %d: torn within depth bound", offset)
		}
		for _, b := range buf {
			if b != 0x01 {
				t.Fatalf("offset %d: mixed payload %x", offset, buf)
			}
		}
	}
}

func TestStateMessageWriterNeverTouchesPublishedSlot(t *testing.T) {
	s := NewStateMessage(0, "s", 2, 8)
	for v := int64(0); v < 20; v++ {
		w := s.BeginWrite()
		// Before commit, the published value must still be readable.
		if v > 0 {
			got, ok := s.Read()
			if !ok || got != v-1 {
				t.Fatalf("mid-write read = %d/%v, want %d", got, ok, v-1)
			}
		}
		w.SetWord(v)
		w.Commit()
	}
}

func TestStateMessageString(t *testing.T) {
	s := NewStateMessage(3, "rpm", 3, 8)
	if s.String() == "" {
		t.Error("empty String()")
	}
}
