package ipc

import (
	"emeralds/internal/metrics"
)

// VLink is the simulated-kernel counterpart of the native MPMC ring in
// internal/ipc/vlink: a bounded multi-producer multi-consumer message
// queue in the Virtual-Link style. In virtual time the kernel is a
// sequential interpreter, so no atomics are needed here — the structure
// models the ring's semantics (bounded FIFO, batched slot claims, a
// selectable full-queue policy) while the cost model charges the O(1)
// ticket-claim profile of the real thing. Drop mode mirrors
// Virtual-Link's lossy telemetry channels: a full link refuses the
// surplus and counts it, never blocking the producer.
type VLink struct {
	ID      int
	Name    string
	Drop    bool // full-queue policy: drop (count) instead of blocking
	buf     []Msg
	head    int
	n       int
	dropped uint64
	met     *metrics.Set // nil-safe; see Observe
}

// NewVLink returns a virtual link holding at most capacity messages.
func NewVLink(id int, name string, capacity int, drop bool) *VLink {
	if capacity <= 0 {
		capacity = 1
	}
	return &VLink{ID: id, Name: name, Drop: drop, buf: make([]Msg, capacity)}
}

// Observe directs the link's send/receive/drop counters into set, so
// every queue operation is counted exactly once however the kernel
// reaches it (task op, pending-send completion).
func (v *VLink) Observe(set *metrics.Set) { v.met = set }

// Cap reports the capacity.
func (v *VLink) Cap() int { return len(v.buf) }

// Len reports the number of queued messages.
func (v *VLink) Len() int { return v.n }

// Space reports the number of free slots.
func (v *VLink) Space() int { return len(v.buf) - v.n }

// Full reports whether a single-message send would not fit.
func (v *VLink) Full() bool { return v.n == len(v.buf) }

// Empty reports whether a receive would block.
func (v *VLink) Empty() bool { return v.n == 0 }

// Dropped reports the number of messages refused in drop mode.
func (v *VLink) Dropped() uint64 { return v.dropped }

// Push enqueues one message, reporting whether it was accepted. A full
// link refuses (the kernel blocks the sender or, in drop mode, routes
// the refusal through PushDrop).
func (v *VLink) Push(m Msg) bool {
	if v.n == len(v.buf) {
		return false
	}
	v.buf[(v.head+v.n)%len(v.buf)] = m
	v.n++
	if v.met != nil {
		v.met.Inc(metrics.VLinkSends)
	}
	return true
}

// PushBatch enqueues n copies of m, returning the number accepted. In
// drop mode the surplus is counted as dropped; in block mode the caller
// must have checked Space() >= n first (batches are all-or-nothing).
func (v *VLink) PushBatch(m Msg, n int) int {
	accepted := 0
	for i := 0; i < n; i++ {
		if !v.Push(m) {
			break
		}
		accepted++
	}
	if v.Drop && accepted < n {
		surplus := uint64(n - accepted)
		v.dropped += surplus
		if v.met != nil {
			v.met.Add(metrics.VLinkDrops, surplus)
		}
	}
	return accepted
}

// Pop dequeues the oldest message.
func (v *VLink) Pop() (Msg, bool) {
	if v.n == 0 {
		return Msg{}, false
	}
	m := v.buf[v.head]
	v.head = (v.head + 1) % len(v.buf)
	v.n--
	if v.met != nil {
		v.met.Inc(metrics.VLinkRecvs)
	}
	return m, true
}
