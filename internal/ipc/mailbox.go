// Package ipc implements the intra-node communication mechanisms of
// Figure 1: mailboxes (bounded, copying message queues), and the state
// messages reconstructed from §7 — the single-writer multi-reader
// wait-free mechanism EMERALDS advocates for periodic sensor/actuator
// data. Shared-memory IPC is provided by package mem (regions mapped
// into several address spaces).
//
// This package holds the pure data structures; blocking semantics,
// cost charging and scheduler interaction live in the kernel.
package ipc

import (
	"emeralds/internal/metrics"
)

// Msg is one mailbox message: an opaque word plus the payload size used
// for copy-cost accounting (fieldbus messages are "short, simple
// messages", §3, so a word of payload plus a size is representative).
type Msg struct {
	Val  int64
	Size int
}

// Mailbox is a bounded FIFO message queue.
type Mailbox struct {
	ID   int
	Name string
	buf  []Msg
	head int
	n    int
	met  *metrics.Set // nil-safe; see Observe
}

// Observe directs the mailbox's send/receive counters into m. The ipc
// layer owns MailboxSends/MailboxRecvs so every queue operation is
// counted exactly once, however the kernel reaches it (task op, pending
// send completion, interrupt-handler injection).
func (m *Mailbox) Observe(set *metrics.Set) { m.met = set }

// NewMailbox returns a mailbox holding at most capacity messages.
func NewMailbox(id int, name string, capacity int) *Mailbox {
	if capacity <= 0 {
		capacity = 1
	}
	return &Mailbox{ID: id, Name: name, buf: make([]Msg, capacity)}
}

// Cap reports the capacity.
func (m *Mailbox) Cap() int { return len(m.buf) }

// Len reports the number of queued messages.
func (m *Mailbox) Len() int { return m.n }

// Full reports whether a send would block.
func (m *Mailbox) Full() bool { return m.n == len(m.buf) }

// Empty reports whether a receive would block.
func (m *Mailbox) Empty() bool { return m.n == 0 }

// Push enqueues a message, reporting whether it was accepted. A full
// mailbox refuses the message and the caller decides the policy — the
// kernel blocks the sending task (§7 queue behavior), an ISR drops the
// sample. Fuzzed producer/consumer graphs legally race senders against
// capacity, so a refused push is an ordinary outcome, not a kernel bug.
func (m *Mailbox) Push(msg Msg) bool {
	if m.Full() {
		return false
	}
	m.buf[(m.head+m.n)%len(m.buf)] = msg
	m.n++
	m.met.Inc(metrics.MailboxSends)
	return true
}

// Pop dequeues the oldest message. An empty mailbox reports ok=false
// and the caller blocks the receiving task (or polls again); like Push
// it never panics.
func (m *Mailbox) Pop() (Msg, bool) {
	if m.Empty() {
		return Msg{}, false
	}
	msg := m.buf[m.head]
	m.head = (m.head + 1) % len(m.buf)
	m.n--
	m.met.Inc(metrics.MailboxRecvs)
	return msg, true
}
