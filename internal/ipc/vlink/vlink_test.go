package vlink

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"emeralds/internal/ipc"
)

// refQueue is the mutex-guarded linearizable reference the ring is
// checked against, mirroring the reference-heap pattern in
// internal/schedq.
type refQueue struct {
	mu  sync.Mutex
	buf []ipc.Msg
	cap int
}

func (q *refQueue) push(m ipc.Msg) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) >= q.cap {
		return false
	}
	q.buf = append(q.buf, m)
	return true
}

func (q *refQueue) pop() (ipc.Msg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return ipc.Msg{}, false
	}
	m := q.buf[0]
	q.buf = q.buf[1:]
	return m, true
}

// TestVLinkSequentialProperty drives ring and reference with the same
// random operation stream: every accept/reject decision and every
// dequeued message must agree exactly (single-threaded, the ring is a
// plain FIFO).
func TestVLinkSequentialProperty(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 8, 17} {
		r := New(capacity)
		ref := &refQueue{cap: r.Cap()} // ring rounds up to power of two
		rng := rand.New(rand.NewSource(int64(42 + capacity)))
		var next int64
		for i := 0; i < 20000; i++ {
			if rng.Intn(2) == 0 {
				m := ipc.Msg{Val: next, Size: int(next % 64)}
				next++
				got, want := r.TryEnqueue(m), ref.push(m)
				if got != want {
					t.Fatalf("cap %d op %d: enqueue=%v ref=%v (len %d)", capacity, i, got, want, r.Len())
				}
			} else {
				gm, got := r.TryDequeue()
				wm, want := ref.pop()
				if got != want || gm != wm {
					t.Fatalf("cap %d op %d: dequeue=(%v,%v) ref=(%v,%v)", capacity, i, gm, got, wm, want)
				}
			}
			if r.Len() != len(ref.buf) {
				t.Fatalf("cap %d op %d: len=%d ref=%d", capacity, i, r.Len(), len(ref.buf))
			}
		}
	}
}

// TestVLinkConcurrentNoLossNoDup hammers the ring with P producers and
// C consumers. Each message carries (producer id, per-producer seq)
// packed into Val; afterwards every message must have arrived exactly
// once and in per-producer FIFO order, and the ring's capacity must
// never have been exceeded (checked implicitly: accepted-in-flight
// never exceeds Cap because TryEnqueue refuses when full).
func TestVLinkConcurrentNoLossNoDup(t *testing.T) {
	const perProducer = 20000
	for _, cfg := range []struct{ p, c int }{{1, 1}, {2, 2}, {4, 4}, {8, 2}, {2, 8}} {
		r := New(64)
		var wg sync.WaitGroup
		recvd := make([][]int64, cfg.c)
		for ci := 0; ci < cfg.c; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				for {
					m, ok := r.TryDequeue()
					if !ok {
						runtime.Gosched()
						m, ok = r.TryDequeue()
						if !ok {
							continue
						}
					}
					if m.Val < 0 {
						return // poison pill: one per consumer
					}
					recvd[ci] = append(recvd[ci], m.Val)
				}
			}(ci)
		}
		for pi := 0; pi < cfg.p; pi++ {
			wg.Add(1)
			go func(pi int) {
				defer wg.Done()
				for s := 0; s < perProducer; s++ {
					m := ipc.Msg{Val: int64(pi)<<32 | int64(s), Size: 8}
					for !r.TryEnqueue(m) {
						runtime.Gosched()
					}
				}
			}(pi)
		}
		// Poison each consumer once all payload has been accepted.
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		<-waitProducers(r, cfg.p, perProducer)
		for i := 0; i < cfg.c; i++ {
			for !r.TryEnqueue(ipc.Msg{Val: -1}) {
				runtime.Gosched()
			}
		}
		<-done

		seen := make(map[int64]bool, cfg.p*perProducer)
		total := 0
		for ci := range recvd {
			perProdLast := make([]int64, cfg.p)
			for i := range perProdLast {
				perProdLast[i] = -1
			}
			for _, v := range recvd[ci] {
				if seen[v] {
					t.Fatalf("p=%d c=%d: duplicate message %x", cfg.p, cfg.c, v)
				}
				seen[v] = true
				total++
				pi, s := v>>32, v&0xffffffff
				if s <= perProdLast[pi] {
					t.Fatalf("p=%d c=%d: consumer %d saw producer %d seq %d after %d", cfg.p, cfg.c, ci, pi, s, perProdLast[pi])
				}
				perProdLast[pi] = s
			}
		}
		if total != cfg.p*perProducer {
			t.Fatalf("p=%d c=%d: received %d of %d messages", cfg.p, cfg.c, total, cfg.p*perProducer)
		}
	}
}

// waitProducers polls until the ring has accepted all p*n payload
// messages (enqueue cursor reached the payload total plus whatever was
// consumed — simplest robust signal: total enqueued ≥ p*n).
func waitProducers(r *Ring, p, n int) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		for int(r.enq.Load()) < p*n {
			runtime.Gosched()
		}
		close(ch)
	}()
	return ch
}

// TestVLinkStress runs a tight producer/consumer storm at several
// GOMAXPROCS settings; the -race ci gate runs this 5×.
func TestVLinkStress(t *testing.T) {
	for _, procs := range []int{1, 4, 8} {
		t.Run(procsName(procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			const msgs = 30000
			r := New(16)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(2)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < msgs/4; i++ {
						for !r.TryEnqueue(ipc.Msg{Val: int64(i), Size: i % 32}) {
							runtime.Gosched()
						}
					}
				}(w)
				go func() {
					defer wg.Done()
					for i := 0; i < msgs/4; i++ {
						for {
							if _, ok := r.TryDequeue(); ok {
								break
							}
							runtime.Gosched()
						}
					}
				}()
			}
			wg.Wait()
			if r.Len() != 0 {
				t.Fatalf("GOMAXPROCS=%d: %d messages left in ring", procs, r.Len())
			}
		})
	}
}

func procsName(p int) string {
	return map[int]string{1: "procs1", 4: "procs4", 8: "procs8"}[p]
}

// TestVLinkZeroAlloc pins the zero-allocation steady-state contract for
// enqueue/dequeue.
func TestVLinkZeroAlloc(t *testing.T) {
	r := New(8)
	if n := testing.AllocsPerRun(1000, func() {
		if !r.TryEnqueue(ipc.Msg{Val: 7, Size: 16}) {
			t.Fatal("enqueue refused on non-full ring")
		}
		if _, ok := r.TryDequeue(); !ok {
			t.Fatal("dequeue failed on non-empty ring")
		}
	}); n != 0 {
		t.Fatalf("enqueue/dequeue allocated %v times per op", n)
	}
}

// TestVLinkCapacityRounding locks the power-of-two rounding contract.
func TestVLinkCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {8, 8}, {9, 16}} {
		if got := New(tc.in).Cap(); got != tc.want {
			t.Fatalf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}
