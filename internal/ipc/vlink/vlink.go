// Package vlink is the native (runnable, not simulated) counterpart of
// the kernel's virtual-link queues: a bounded lock-free multi-producer
// multi-consumer ring in the style of Virtual-Link's cache-conscious
// MPMC channels. The design is the classic sequence-stamped-cell array
// queue: every cell carries an atomic sequence number that encodes, for
// the producer and consumer whose ticket lands on it, whether the cell
// is free to write (seq == ticket), ready to read (seq == ticket+1), or
// still owned by a slower peer from a previous lap. Producers and
// consumers claim tickets with a single CAS on their shared cursor and
// then synchronize only through their cell's stamp, so disjoint
// operations never contend and the queue is lock-free: a stalled
// producer blocks only the consumer of its own cell, never the ring.
//
// Steady-state operation performs zero allocations (the cell array is
// laid out once at construction), which the AllocsPerRun gate in
// vlink_test.go pins. The simulated kernel object (internal/kernel
// vlink.go) mirrors this structure's O(1) cost profile in virtual time;
// this package is the one that real goroutines hammer under -race.
package vlink

import (
	"sync/atomic"

	"emeralds/internal/ipc"
)

// cell is one ring slot. The sequence stamp is padded apart from its
// neighbours so producers spinning on adjacent cells do not false-share
// a cache line (64-byte lines; the stamp plus message is 24 bytes, pad
// to 64).
type cell struct {
	seq atomic.Uint64
	msg ipc.Msg
	_   [64 - 24]byte
}

// Ring is a bounded lock-free MPMC queue of ipc.Msg. The zero value is
// not usable; construct with New.
type Ring struct {
	mask  uint64
	cells []cell
	_     [64 - 32]byte // keep the hot cursors off the header line
	enq   atomic.Uint64
	_     [64 - 8]byte
	deq   atomic.Uint64
	_     [64 - 8]byte
}

// New returns a ring holding at most capacity messages. Capacity is
// rounded up to the next power of two (minimum 2) so cell indexing is a
// mask, not a modulo.
func New(capacity int) *Ring {
	c := 2
	for c < capacity {
		c <<= 1
	}
	r := &Ring{mask: uint64(c - 1), cells: make([]cell, c)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Cap reports the ring's (rounded) capacity.
func (r *Ring) Cap() int { return len(r.cells) }

// Len reports the approximate number of queued messages. It is exact
// when the ring is quiescent; under concurrent traffic it is a snapshot
// of the cursor distance.
func (r *Ring) Len() int {
	d := r.enq.Load() - r.deq.Load()
	if d > uint64(len(r.cells)) {
		d = uint64(len(r.cells))
	}
	return int(d)
}

// TryEnqueue appends m, reporting false if the ring is full. It never
// blocks: a false return is immediate.
func (r *Ring) TryEnqueue(m ipc.Msg) bool {
	pos := r.enq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			// Cell free for this lap: claim the ticket.
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.msg = m
				c.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// Cell still holds last lap's message: full.
			return false
		default:
			// Another producer already claimed pos; reload.
			pos = r.enq.Load()
		}
	}
}

// TryDequeue removes the oldest message, reporting false if the ring is
// empty. It never blocks.
func (r *Ring) TryDequeue() (ipc.Msg, bool) {
	pos := r.deq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos+1:
			// Cell published for this lap: claim the ticket.
			if r.deq.CompareAndSwap(pos, pos+1) {
				m := c.msg
				c.seq.Store(pos + r.mask + 1)
				return m, true
			}
			pos = r.deq.Load()
		case seq <= pos:
			// Producer has not published pos yet: empty.
			return ipc.Msg{}, false
		default:
			// Another consumer already claimed pos; reload.
			pos = r.deq.Load()
		}
	}
}
