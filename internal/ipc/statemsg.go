package ipc

import (
	"encoding/binary"
	"fmt"

	"emeralds/internal/metrics"
)

// StateMessage is the single-writer, multi-reader, wait-free
// communication mechanism of §7 (reconstructed; see DESIGN.md). The
// design replaces a mailbox carrying periodic state updates (sensor
// readings, setpoints) with a shared variable: readers always want the
// freshest value, never a queue of stale ones, so the writer publishes
// into an N-deep circular buffer of versions and readers copy the most
// recently completed version. Neither side blocks, takes a lock, or
// touches the scheduler — write and read are O(size) copies plus O(1)
// index arithmetic.
//
// Consistency argument: the writer publishes version v into slot
// v mod N and only then advances the published index. A reader
// snapshots the published index, then copies that slot. The copy can
// only be torn if the writer laps the whole buffer and reuses the slot
// mid-copy, i.e. if at least N−1 writes complete during one read. So a
// depth N ≥ (maximum writes that can preempt one read) + 2 guarantees
// every read is consistent. MinDepth computes this bound; the
// adversarial tests in statemsg_test.go drive the exposed step API to
// show reads tear exactly when the bound is violated and never when it
// holds.
type StateMessage struct {
	ID    int
	Name  string
	size  int
	slots [][]byte
	seqs  []uint64 // version stored in each slot
	// published is the index of the newest completed version; ^0 means
	// nothing published yet.
	published uint64
	writes    uint64
	reads     uint64
	met       *metrics.Set // nil-safe; see Observe
}

// Observe directs the state message's write/read counters into m,
// alongside the Writes/Reads fields the consistency tests use.
func (s *StateMessage) Observe(set *metrics.Set) { s.met = set }

// NewStateMessage creates a state message with the given version-buffer
// depth and payload size in bytes (minimum 8: one machine word).
func NewStateMessage(id int, name string, depth, size int) *StateMessage {
	if depth < 2 {
		depth = 2
	}
	if size < 8 {
		size = 8
	}
	s := &StateMessage{
		ID:        id,
		Name:      name,
		size:      size,
		slots:     make([][]byte, depth),
		seqs:      make([]uint64, depth),
		published: ^uint64(0),
	}
	for i := range s.slots {
		s.slots[i] = make([]byte, size)
	}
	return s
}

// MinDepth returns the version-buffer depth that guarantees consistent
// reads when at most maxWritesDuringRead writer activations can preempt
// a single read.
func MinDepth(maxWritesDuringRead int) int {
	if maxWritesDuringRead < 0 {
		maxWritesDuringRead = 0
	}
	return maxWritesDuringRead + 2
}

// Depth reports the version-buffer depth.
func (s *StateMessage) Depth() int { return len(s.slots) }

// Size reports the payload size in bytes.
func (s *StateMessage) Size() int { return s.size }

// Writes reports the number of completed writes.
func (s *StateMessage) Writes() uint64 { return s.writes }

// Reads reports the number of completed reads.
func (s *StateMessage) Reads() uint64 { return s.reads }

// Write publishes val as the next version. Wait-free: never blocks,
// never interacts with the scheduler. This is the atomic high-level
// form used by the kernel, where op segments are indivisible.
func (s *StateMessage) Write(val int64) {
	w := s.BeginWrite()
	binary.LittleEndian.PutUint64(w.buf[:8], uint64(val))
	w.Commit()
}

// Read returns the freshest published value (the leading word of the
// payload) and false if nothing has been published yet.
func (s *StateMessage) Read() (int64, bool) {
	r, ok := s.BeginRead()
	if !ok {
		return 0, false
	}
	buf, _ := r.Finish()
	return int64(binary.LittleEndian.Uint64(buf[:8])), true
}

// --- step API for adversarial interleaving tests -------------------

// WriteHandle is an in-progress write: the slot is chosen and versioned
// but not yet published.
type WriteHandle struct {
	s    *StateMessage
	slot int
	seq  uint64
	buf  []byte
}

// BeginWrite selects the next slot. The slot being (re)written is the
// oldest version, never the published one (depth ≥ 2).
func (s *StateMessage) BeginWrite() *WriteHandle {
	seq := s.writes
	slot := int(seq % uint64(len(s.slots)))
	return &WriteHandle{s: s, slot: slot, seq: seq, buf: s.slots[slot]}
}

// SetByte writes one payload byte — the unit of adversarial
// interleaving in tests.
func (w *WriteHandle) SetByte(i int, b byte) { w.buf[i] = b }

// SetWord writes the leading word of the payload.
func (w *WriteHandle) SetWord(val int64) {
	binary.LittleEndian.PutUint64(w.buf[:8], uint64(val))
}

// Commit publishes the version.
func (w *WriteHandle) Commit() {
	w.s.seqs[w.slot] = w.seq
	w.s.published = w.seq
	w.s.writes++
	w.s.met.Inc(metrics.StateWrites)
}

// ReadHandle is an in-progress read: the version index is snapshotted;
// the payload copy proceeds byte-by-byte under test control.
type ReadHandle struct {
	s    *StateMessage
	seq  uint64
	slot int
	copy []byte
	pos  int
}

// BeginRead snapshots the freshest published version. ok is false when
// nothing has been published.
func (s *StateMessage) BeginRead() (*ReadHandle, bool) {
	if s.published == ^uint64(0) {
		return nil, false
	}
	seq := s.published
	return &ReadHandle{
		s:    s,
		seq:  seq,
		slot: int(seq % uint64(len(s.slots))),
		copy: make([]byte, s.size),
	}, true
}

// Step copies one byte of the payload; it reports false when the copy
// is complete.
func (r *ReadHandle) Step() bool {
	if r.pos >= len(r.copy) {
		return false
	}
	r.copy[r.pos] = r.s.slots[r.slot][r.pos]
	r.pos++
	return r.pos < len(r.copy)
}

// Finish completes any remaining copy steps and returns the payload and
// whether the read was consistent (the slot still holds the snapshotted
// version — torn reads report false; they occur only when the buffer
// depth bound of MinDepth is violated).
func (r *ReadHandle) Finish() ([]byte, bool) {
	for r.Step() {
	}
	r.s.reads++
	r.s.met.Inc(metrics.StateReads)
	return r.copy, r.s.seqs[r.slot] == r.seq
}

func (s *StateMessage) String() string {
	return fmt.Sprintf("statemsg %q (depth=%d size=%dB writes=%d)", s.Name, len(s.slots), s.size, s.writes)
}
