// Command emreport turns a kernel trace into a latency-attribution
// report: every task's response time decomposed into running /
// preempted / blocked / overhead (the components sum exactly to the
// measured response), a root-cause entry for every deadline miss
// naming the intervals that consumed the slack, and flagged
// priority-inversion windows.
//
//	emreport                             # replay the Table 2 workload on CSD-3
//	emreport -policy rm -ms 200          # watch RM's τ₅ misses get explained
//	emreport -trace trace.json           # analyze an emsim/emtrace trace export
//	emreport -trace t.json -syncheck     # + communication synchronizability check
//	emreport -json                       # artifact with attribution block in results/
//
// -trace accepts either a raw emeralds.trace/v1 JSON log or a Perfetto
// export produced by emsim -trace-out / emtrace (the raw log rides
// along inside). Output is deterministic: the same trace or scenario
// always renders the same bytes, regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"emeralds/internal/attrib"
	"emeralds/internal/cli"
	"emeralds/internal/ipc/syncheck"
	"emeralds/internal/kernel"
	"emeralds/internal/sim"
	"emeralds/internal/task"
	"emeralds/internal/trace"
	"emeralds/internal/vtime"
	"emeralds/internal/workload"
)

func main() {
	c := cli.Register("emreport")
	f := c.SimFlags()
	policy := flag.String("policy", "csd", "scheduler: csd, edf, rm, rm-heap, fp")
	queues := flag.Int("queues", 3, "CSD queue count")
	n := flag.Int("n", 0, "random workload size (0 = use the Table 2 workload)")
	u := flag.Float64("u", 0.7, "random workload utilization")
	div := flag.Int("div", 1, "period divisor")
	ms := flag.Float64("ms", 100, "virtual milliseconds to run (scenario mode)")
	standard := flag.Bool("standard-sem", false, "use the standard §6.1 semaphore scheme")
	traceIn := flag.String("trace", "", "analyze a trace JSON file instead of replaying a scenario")
	doSync := flag.Bool("syncheck", false, "append an IPC synchronizability check (crown detection over the observed sends/receives)")
	c.Parse()

	var (
		rep    *attrib.Report
		events []trace.Event
		source string
		err    error
	)
	if *traceIn != "" {
		rep, events, err = analyzeFile(*traceIn)
		source = *traceIn
	} else {
		cfg := scenario{
			Policy: *policy, Queues: *queues, N: *n, U: *u, Div: *div,
			Seed: c.Seed, Millis: *ms, StandardSem: *standard,
			CPUs: c.CPUs, Lock: c.Lock,
		}
		rep, events, err = runScenario(cfg, c, f)
		source = cfg.String()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "emreport:", err)
		os.Exit(1)
	}
	if rep.TraceDropped > 0 && !c.Quiet {
		fmt.Fprintf(os.Stderr, "emreport: WARNING: %d trace events were dropped by the ring; the report covers a truncated window\n", rep.TraceDropped)
	}

	if c.CSV {
		writeCSV(os.Stdout, rep)
	} else {
		var sb strings.Builder
		rep.RenderText(&sb, source)
		if *doSync {
			fmt.Fprintf(&sb, "\n%s", syncheck.Check(events).String())
		}
		fmt.Print(sb.String())
		c.EmitText(sb.String())
	}

	c.Attribution = rep
	type config struct {
		Trace  string  `json:"trace,omitempty"`
		Policy string  `json:"policy,omitempty"`
		Queues int     `json:"queues,omitempty"`
		N      int     `json:"n,omitempty"`
		U      float64 `json:"u,omitempty"`
		Div    int     `json:"period_div,omitempty"`
		Seed   int64   `json:"seed,omitempty"`
		Millis float64 `json:"run_ms,omitempty"`
		StdSem bool    `json:"standard_sem,omitempty"`
		CPUs   int     `json:"cpus,omitempty"`
		Lock   string  `json:"lock,omitempty"`
	}
	type series struct {
		Tasks      int `json:"tasks"`
		Misses     int `json:"misses"`
		Inversions int `json:"inversions"`
	}
	cfg := config{Trace: *traceIn}
	if *traceIn == "" {
		cpus, lock := c.MulticoreConfig()
		cfg = config{
			Policy: *policy, Queues: *queues, N: *n, U: *u,
			Div: *div, Seed: c.Seed, Millis: *ms, StdSem: *standard,
			CPUs: cpus, Lock: lock,
		}
	}
	c.EmitArtifact(cfg, series{len(rep.Tasks), len(rep.Misses), len(rep.Inversions)})
}

// scenario mirrors emsim's simulation flags.
type scenario struct {
	Policy      string
	Queues      int
	N           int
	U           float64
	Div         int
	Seed        int64
	Millis      float64
	StandardSem bool
	CPUs        int
	Lock        string
}

func (s scenario) String() string {
	wl := "table2"
	if s.N > 0 {
		wl = fmt.Sprintf("random n=%d u=%.2f seed=%d", s.N, s.U, s.Seed)
	}
	out := fmt.Sprintf("scenario %s policy=%s %.0fms", wl, s.Policy, s.Millis)
	if s.CPUs > 1 {
		out += fmt.Sprintf(" cpus=%d lock=%s", s.CPUs, s.Lock)
	}
	return out
}

// buildSystem boots the configured workload and runs it to the
// configured horizon. Deterministic for a given config; f (optional)
// attaches the flight recorder before Boot.
func buildSystem(cfg scenario, f *cli.SimFlags) (*kernel.Node, error) {
	var specs []task.Spec
	if cfg.N > 0 {
		specs = workload.Generate(workload.Config{
			N: cfg.N, Utilization: cfg.U, PeriodDiv: cfg.Div, Seed: cfg.Seed,
		})
	} else {
		specs = workload.Table2()
	}
	sys, err := kernel.Boot(sim.Config{
		Policy:        cfg.Policy,
		Queues:        cfg.Queues,
		CPUs:          cfg.CPUs,
		Lock:          cfg.Lock,
		StandardSem:   cfg.StandardSem,
		TraceCapacity: 1 << 20,
	}, func(sys *kernel.Node) error {
		for _, s := range specs {
			sys.AddTask(s)
		}
		if f != nil {
			return f.Observe(sys)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sys.Run(vtime.Millis(cfg.Millis))
	return sys, nil
}

// runScenario replays the scenario's trace into a report, returning the
// raw events too so -syncheck can re-analyze the same window.
func runScenario(cfg scenario, c *cli.Common, f *cli.SimFlags) (*attrib.Report, []trace.Event, error) {
	sys, err := buildSystem(cfg, f)
	if err != nil {
		return nil, nil, err
	}
	if c != nil {
		c.Diagnostics = sys.Kernel().Diagnostics()
	}
	if f != nil {
		if err := f.Finish(sys); err != nil {
			return nil, nil, err
		}
	}
	events := sys.Trace().Events()
	an, err := attrib.Analyze(events, sys.Trace().Dropped())
	if err != nil {
		return nil, nil, err
	}
	return an.Report(), events, nil
}

// analyzeFile loads a trace JSON file (raw log or Perfetto export) and
// replays it.
func analyzeFile(path string) (*attrib.Report, []trace.Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	events, dropped, err := trace.ParseJSON(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	an, err := attrib.Analyze(events, dropped)
	if err != nil {
		return nil, nil, err
	}
	return an.Report(), events, nil
}

// writeCSV emits the per-task decomposition as machine-readable rows.
func writeCSV(w io.Writer, rep *attrib.Report) {
	header := []string{"task", "prio", "activations", "misses", "overruns",
		"response_us", "running_us", "preempted_us", "blocked_us", "overhead_us"}
	var rows [][]string
	for _, t := range rep.Tasks {
		rows = append(rows, []string{
			t.Task, fmt.Sprint(t.Prio), fmt.Sprint(t.Activations),
			fmt.Sprint(t.Misses), fmt.Sprint(t.Overruns),
			fmt.Sprintf("%.3f", t.TotalUs["response"]),
			fmt.Sprintf("%.3f", t.TotalUs["running"]),
			fmt.Sprintf("%.3f", t.TotalUs["preempted"]),
			fmt.Sprintf("%.3f", t.TotalUs["blocked"]),
			fmt.Sprintf("%.3f", t.TotalUs["overhead"]),
		})
	}
	cli.WriteCSV(w, header, rows)
}
