package main

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// goldenScenario is the reference run: RM on the Table 2 workload long
// enough to produce τ₄'s overload misses, so the golden locks the miss
// root-cause rendering too.
func goldenScenario() scenario {
	return scenario{Policy: "rm", Queues: 3, Div: 1, U: 0.7, Seed: 1, Millis: 50}
}

func renderScenario(t *testing.T, cfg scenario) string {
	t.Helper()
	rep, _, err := runScenario(cfg, nil, nil)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	var sb strings.Builder
	rep.RenderText(&sb, cfg.String())
	return sb.String()
}

// TestGoldenReport locks emreport's text output byte-for-byte.
func TestGoldenReport(t *testing.T) {
	got := renderScenario(t, goldenScenario())
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("report differs from golden (rerun with -update after intentional changes)\ngot:\n%s", got)
	}
}

// TestWorkerIndependence: the report is a pure function of the trace —
// identical bytes whether the process runs on one core or many. This
// is the -workers 1 vs -workers 8 guarantee: worker fan-out never
// enters the replay path.
func TestWorkerIndependence(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	one := renderScenario(t, goldenScenario())
	runtime.GOMAXPROCS(8)
	eight := renderScenario(t, goldenScenario())
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Error("report bytes differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
}

// TestTraceFileRoundTrip: analyzing an exported raw trace file must
// produce exactly the report of the live in-process replay.
func TestTraceFileRoundTrip(t *testing.T) {
	cfg := goldenScenario()
	sys, err := buildSystem(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Trace().ExportJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fromFile, _, err := analyzeFile(path)
	if err != nil {
		t.Fatalf("analyzeFile: %v", err)
	}
	var a, b strings.Builder
	fromFile.RenderText(&a, "x")
	live := renderScenario(t, cfg)
	// renderScenario uses the scenario as source; normalize headers.
	b.WriteString(strings.Replace(live, "EMERALDS latency attribution — "+cfg.String(),
		"EMERALDS latency attribution — x", 1))
	if a.String() != b.String() {
		t.Error("trace-file replay differs from live replay")
	}
}

// TestCSVOutput sanity-checks the machine-readable mode.
func TestCSVOutput(t *testing.T) {
	rep, _, err := runScenario(goldenScenario(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	writeCSV(&sb, rep)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has no data rows:\n%s", sb.String())
	}
	want := len(strings.Split(lines[0], ","))
	for i, l := range lines {
		if got := len(strings.Split(l, ",")); got != want {
			t.Errorf("CSV line %d has %d fields, want %d: %q", i, got, want, l)
		}
	}
}
