// Command schedtab regenerates Table 1 (scheduler queue-operation
// overheads), Table 3 (the CSD-3 overhead case analysis) and the
// Table 2 / Figure 2 demonstration.
//
//	schedtab             # all three
//	schedtab -table 1    # only Table 1
//	schedtab -table 3 -q 4 -r 12 -n 30
//	schedtab -json -txt-out results/schedtab.txt   # paired artifacts in results/
package main

import (
	"flag"
	"fmt"
	"strings"

	"emeralds/internal/cli"
	"emeralds/internal/experiments"
)

func main() {
	c := cli.Register("schedtab")
	table := flag.Int("table", 0, "which table (1, 2, 3); 0 = all")
	q := flag.Int("q", 5, "Table 3: DP1 queue length")
	r := flag.Int("r", 15, "Table 3: total DP tasks")
	n := flag.Int("n", 30, "Table 3: total tasks")
	c.Parse()

	type series struct {
		Table1  []experiments.Table1Row    `json:"table1,omitempty"`
		Figure2 *experiments.Figure2Result `json:"figure2,omitempty"`
		Table3  []experiments.Table3Entry  `json:"table3,omitempty"`
	}
	var s series
	var out strings.Builder
	if *table == 0 || *table == 1 {
		s.Table1 = experiments.Table1(nil)
		out.WriteString(experiments.RenderTable1(s.Table1))
		out.WriteString("\n")
	}
	if *table == 0 || *table == 2 {
		fig := experiments.Figure2(nil)
		s.Figure2 = &fig
		out.WriteString(fig.Render())
		out.WriteString("\n")
	}
	if *table == 0 || *table == 3 {
		s.Table3 = experiments.Table3(nil, *q, *r, *n)
		out.WriteString(experiments.RenderTable3(s.Table3, *q, *r, *n))
	}
	fmt.Print(out.String())
	c.EmitText(out.String())

	type config struct {
		Table int `json:"table"`
		Q     int `json:"q"`
		R     int `json:"r"`
		N     int `json:"n"`
	}
	c.EmitArtifact(config{*table, *q, *r, *n}, s)
}
