// Command schedtab regenerates Table 1 (scheduler queue-operation
// overheads), Table 3 (the CSD-3 overhead case analysis) and the
// Table 2 / Figure 2 demonstration.
//
//	schedtab             # all three
//	schedtab -table 1    # only Table 1
//	schedtab -table 3 -q 4 -r 12 -n 30
package main

import (
	"flag"
	"fmt"

	"emeralds/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "which table (1, 2, 3); 0 = all")
	q := flag.Int("q", 5, "Table 3: DP1 queue length")
	r := flag.Int("r", 15, "Table 3: total DP tasks")
	n := flag.Int("n", 30, "Table 3: total tasks")
	flag.Parse()

	if *table == 0 || *table == 1 {
		fmt.Print(experiments.RenderTable1(experiments.Table1(nil)))
		fmt.Println()
	}
	if *table == 0 || *table == 2 {
		fmt.Print(experiments.Figure2(nil).Render())
		fmt.Println()
	}
	if *table == 0 || *table == 3 {
		fmt.Print(experiments.RenderTable3(experiments.Table3(nil, *q, *r, *n), *q, *r, *n))
	}
}
