// Command ipcbench regenerates the §7 comparison (reconstructed; see
// DESIGN.md): per-message kernel overhead of state-message IPC versus
// mailbox IPC, across payload sizes and reader counts.
//
//	ipcbench -sizes 8,64 -readers 1,8
//	ipcbench -csv -json
package main

import (
	"flag"
	"fmt"
	"os"

	"emeralds/internal/cli"
	"emeralds/internal/experiments"
)

func main() {
	c := cli.Register("ipcbench")
	sizes := flag.String("sizes", "8,16,32,64", "payload sizes in bytes")
	readers := flag.String("readers", "1,2,4,8", "consumer task counts")
	c.Parse()
	szs := c.Ints("sizes", *sizes, 1)
	rds := c.Ints("readers", *readers, 1)

	pts, diag := experiments.IPCComparisonDiag(szs, rds, nil,
		experiments.Par{Workers: c.Workers, Progress: c.Progress()})
	c.Diagnostics = diag

	if c.CSV {
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprint(p.Readers), fmt.Sprint(p.Size),
				fmt.Sprintf("%.3f", p.StatePerMsg.Micros()),
				fmt.Sprintf("%.3f", p.MailboxPerMsg.Micros()),
				fmt.Sprintf("%.2f", p.SpeedupX()),
				fmt.Sprintf("%.3f", p.StateSwitchesPerMsg),
				fmt.Sprintf("%.3f", p.MailboxSwitchesPerMsg),
			})
		}
		cli.WriteCSV(os.Stdout,
			[]string{"readers", "size", "state_us_per_msg", "mailbox_us_per_msg", "speedup_x", "state_cs_per_msg", "mbox_cs_per_msg"},
			rows)
	} else {
		fmt.Print(experiments.RenderIPC(pts))
	}

	type config struct {
		Sizes   []int `json:"sizes"`
		Readers []int `json:"readers"`
	}
	c.EmitArtifact(config{szs, rds}, pts)
}
