// Command ipcbench regenerates the §7 comparison (reconstructed; see
// DESIGN.md): per-message kernel overhead of state-message IPC versus
// mailbox IPC, across payload sizes and reader counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emeralds/internal/experiments"
)

func parseInts(s, flagName string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "ipcbench: bad -%s entry %q\n", flagName, f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	sizes := flag.String("sizes", "8,16,32,64", "payload sizes in bytes")
	readers := flag.String("readers", "1,2,4,8", "consumer task counts")
	flag.Parse()

	pts := experiments.IPCComparison(parseInts(*sizes, "sizes"), parseInts(*readers, "readers"), nil)
	fmt.Print(experiments.RenderIPC(pts))
}
