package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden trace export")

// goldenConfig keeps the golden run small: a short slice of the
// Table 2 workload on the default CSD-3 build.
var goldenConfig = exportConfig{
	Policy: "csd", Queues: 3, Millis: 20, Seed: 1, U: 0.7, Div: 1,
}

// TestGoldenExport locks the Perfetto export byte-for-byte: the
// simulation is deterministic and the encoder orders keys lexically,
// so any diff means the trace format (or the kernel's event sequence)
// changed. Regenerate deliberately with `go test ./cmd/emtrace
// -update` and review the diff.
func TestGoldenExport(t *testing.T) {
	var buf bytes.Buffer
	if err := runExport(goldenConfig, &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from %s (%d vs %d bytes); regenerate with -update if the change is intended",
			golden, buf.Len(), len(want))
	}
}

// TestExportPassesOwnChecker: the exporter's output satisfies
// -check-trace, so the CI smoke test can't drift from the format.
func TestExportPassesOwnChecker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := runExport(goldenConfig, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := checkTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats == "" {
		t.Error("checker returned no summary")
	}
}

// TestCheckTraceRejectsGarbage: the checker actually fails on
// malformed inputs (it guards CI, so it must not be a yes-man).
func TestCheckTraceRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"notjson.json": "{",
		"empty.json":   `{"traceEvents": []}`,
		"negdur.json":  `{"traceEvents": [{"ph":"X","ts":0,"dur":-5}]}`,
		"noflow.json":  `{"traceEvents": [{"ph":"s","id":1,"ts":0}]}`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := checkTrace(p); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
