// Command emtrace works with Chrome/Perfetto trace exports and the
// observability blocks of emeralds.artifact/v1 JSON files.
//
//	emtrace -o trace.json                  # run the Table 2 workload, export its trace
//	emtrace -n 12 -u 0.8 -o trace.json     # random workload
//	emtrace -check-trace trace.json        # validate a trace-event file
//	emtrace -check-artifact results/x.json # validate an artifact's diagnostics block
//
// The exported JSON loads directly in ui.perfetto.dev or
// chrome://tracing: one track per task, a slice per scheduling
// quantum, instants for misses/faults/IPC, and flow arrows from each
// semaphore grant to the waiter's next dispatch. The -check modes are
// the CI smoke tests: they exit non-zero with a diagnostic when a file
// does not match the expected shape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"emeralds/internal/harness"
	"emeralds/internal/kernel"
	"emeralds/internal/metrics"
	"emeralds/internal/sim"
	"emeralds/internal/task"
	"emeralds/internal/vtime"
	"emeralds/internal/workload"
)

func main() {
	policy := flag.String("policy", "csd", "scheduler: csd, edf, rm, rm-heap, fp")
	queues := flag.Int("queues", 3, "CSD queue count")
	n := flag.Int("n", 0, "random workload size (0 = use the Table 2 workload)")
	u := flag.Float64("u", 0.7, "random workload utilization")
	div := flag.Int("div", 1, "period divisor")
	ms := flag.Float64("ms", 100, "virtual milliseconds to run")
	seed := flag.Int64("seed", 1, "random workload seed")
	standard := flag.Bool("standard-sem", false, "use the standard §6.1 semaphore scheme")
	out := flag.String("o", "", "output path (default stdout)")
	checkArt := flag.String("check-artifact", "", "validate an artifact's diagnostics block and exit")
	checkTr := flag.String("check-trace", "", "validate a trace-event JSON file and exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "emtrace:", err)
		os.Exit(1)
	}
	switch {
	case *checkArt != "":
		if err := checkArtifact(*checkArt); err != nil {
			fail(err)
		}
		fmt.Printf("emtrace: %s: diagnostics block ok\n", *checkArt)
	case *checkTr != "":
		stats, err := checkTrace(*checkTr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("emtrace: %s: %s\n", *checkTr, stats)
	default:
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		cfg := exportConfig{
			Policy: *policy, Queues: *queues, N: *n, U: *u, Div: *div,
			Seed: *seed, Millis: *ms, StandardSem: *standard,
		}
		if err := runExport(cfg, w); err != nil {
			fail(err)
		}
	}
}

// exportConfig mirrors emsim's simulation flags.
type exportConfig struct {
	Policy      string
	Queues      int
	N           int
	U           float64
	Div         int
	Seed        int64
	Millis      float64
	StandardSem bool
}

// runExport boots a system on the configured workload, runs it, and
// writes the Perfetto export. Fully deterministic: the same config
// always produces the same bytes.
func runExport(cfg exportConfig, w io.Writer) error {
	var specs []task.Spec
	if cfg.N > 0 {
		specs = workload.Generate(workload.Config{
			N: cfg.N, Utilization: cfg.U, PeriodDiv: cfg.Div, Seed: cfg.Seed,
		})
	} else {
		specs = workload.Table2()
	}
	sys, err := kernel.Boot(sim.Config{
		Policy:        cfg.Policy,
		Queues:        cfg.Queues,
		StandardSem:   cfg.StandardSem,
		TraceCapacity: 1 << 20,
	}, func(sys *kernel.Node) error {
		for _, s := range specs {
			sys.AddTask(s)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sys.Run(vtime.Millis(cfg.Millis))
	if d := sys.Trace().Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "emtrace: WARNING: trace ring dropped %d events; the export is truncated\n", d)
	}
	return sys.Trace().ExportPerfetto(w)
}

// checkArtifact validates that an artifact carries a well-formed
// diagnostics block: the full counter set (every metrics.ID name, no
// strays) and internally consistent task summaries.
func checkArtifact(path string) error {
	a, err := harness.ReadArtifact(path)
	if err != nil {
		return err
	}
	d := a.Diagnostics
	if d == nil {
		return fmt.Errorf("%s: no diagnostics block", path)
	}
	// The classic counter block (IDs below Migrations) is always
	// present; the multicore counters appear only when non-zero, which
	// keeps single-CPU artifacts byte-stable.
	valid := map[string]bool{}
	for id := metrics.ID(0); id < metrics.NumIDs; id++ {
		valid[id.String()] = true
		if _, ok := d.Counters[id.String()]; !ok && id < metrics.Migrations {
			return fmt.Errorf("%s: counter %q missing", path, id)
		}
	}
	for name := range d.Counters {
		if !valid[name] {
			return fmt.Errorf("%s: stray counter %q", path, name)
		}
	}
	for _, ts := range d.Tasks {
		if ts.Task == "" || (ts.Metric != "response" && ts.Metric != "blocking") {
			return fmt.Errorf("%s: malformed task summary %+v", path, ts)
		}
		if ts.N > 0 && (ts.MinUs > ts.P50Us || ts.P50Us > ts.MaxUs) {
			return fmt.Errorf("%s: %s/%s quantiles not monotone: %+v", path, ts.Task, ts.Metric, ts)
		}
	}
	return nil
}

// checkTrace validates the shape Perfetto requires of a trace-event
// file: parseable JSON, a non-empty traceEvents array, non-negative
// slice durations, and balanced flow start/finish pairs.
func checkTrace(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return "", fmt.Errorf("%s: empty traceEvents", path)
	}
	var slices, instants int
	flows := map[any]int{}
	for i, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			slices++
			if dur, ok := e["dur"].(float64); !ok || dur < 0 {
				return "", fmt.Errorf("%s: event %d has bad duration %v", path, i, e["dur"])
			}
		case "i":
			instants++
		case "s":
			flows[e["id"]]++
		case "f":
			flows[e["id"]]--
		case "M":
		case "":
			return "", fmt.Errorf("%s: event %d has no ph", path, i)
		}
	}
	for id, bal := range flows {
		if bal != 0 {
			return "", fmt.Errorf("%s: flow id %v unbalanced (%+d)", path, id, bal)
		}
	}
	return fmt.Sprintf("%d events (%d slices, %d instants, %d flows)",
		len(doc.TraceEvents), slices, instants, len(flows)), nil
}
