// Command emstat renders flight-recorder telemetry from a results/
// artifact: channel sparklines, the sliding-window table, SLO verdicts
// with burn-rate alerts, and CUSUM change points. It is the reader for
// the emeralds.timeseries/v1 block that emsim -sample-us (and the fuzz
// harness) embed in their artifacts.
//
//	emsim -json -sample-us 500          # produce results/emsim.json with telemetry
//	emstat results/emsim.json           # render it
//	emstat -windows 16 results/emsim.json
//	emstat -csv results/emsim.json      # window table, machine-readable
//	emstat -slo-miss 0.05 results/emsim.json
//
// Output is deterministic: the same artifact always renders the same
// bytes (locked by a golden test).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"emeralds/internal/cli"
	"emeralds/internal/harness"
	"emeralds/internal/telemetry"
)

func main() {
	windows := flag.Int("windows", 8, "number of aggregation windows in the table")
	sloMiss := flag.Float64("slo-miss", 0, "deadline-miss rate objective (0 = default 0.01)")
	sloP99 := flag.Float64("slo-p99us", 0, "p99 response-time objective in µs (0 = default 10000)")
	sloHead := flag.Float64("slo-headroom", 0, "utilization headroom objective (0 = default 0.10)")
	csv := flag.Bool("csv", false, "emit the window table as CSV instead of the full report")
	txtOut := flag.String("txt-out", "", "also write the rendered text output to this file")
	flag.Parse()

	path := "results/emsim.json"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	s, err := loadSeries(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emstat:", err)
		os.Exit(1)
	}
	slo := telemetry.SLO{MissRate: *sloMiss, P99Us: *sloP99, MinHeadroom: *sloHead}

	if *csv {
		writeCSV(os.Stdout, s, *windows)
		return
	}
	var sb strings.Builder
	render(&sb, s, slo, *windows, path)
	fmt.Print(sb.String())
	if *txtOut != "" {
		if err := os.WriteFile(*txtOut, []byte(sb.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "emstat:", err)
			os.Exit(1)
		}
	}
}

// loadSeries pulls the timeseries block out of an artifact, accepting
// both experiment and fuzz artifacts.
func loadSeries(path string) (*telemetry.Series, error) {
	a, err := harness.ReadArtifactSchema(path, harness.ArtifactSchema)
	if err != nil {
		if a2, err2 := harness.ReadArtifactSchema(path, harness.FuzzSchema); err2 == nil {
			a, err = a2, nil
		}
	}
	if err != nil {
		return nil, err
	}
	if a.Timeseries == nil {
		return nil, fmt.Errorf("%s has no timeseries block (rerun the tool with sampling enabled, e.g. emsim -json -sample-us 500)", path)
	}
	if a.Timeseries.Schema != telemetry.Schema {
		return nil, fmt.Errorf("%s timeseries schema is %q, want %q", path, a.Timeseries.Schema, telemetry.Schema)
	}
	return a.Timeseries, nil
}

// render produces the full human-readable report.
func render(w io.Writer, s *telemetry.Series, slo telemetry.SLO, windows int, title string) {
	rep := telemetry.Analyze(s, slo)
	if windows != 8 {
		rep.Windows = s.Windows(windows)
	}
	rep.RenderText(w, s, title)
}

// writeCSV emits the window table machine-readably.
func writeCSV(w io.Writer, s *telemetry.Series, windows int) {
	var rows [][]string
	for _, win := range s.Windows(windows) {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", float64(win.From)/1e3),
			fmt.Sprintf("%.1f", float64(win.To)/1e3),
			fmt.Sprint(win.Releases),
			fmt.Sprint(win.Completions),
			fmt.Sprint(win.Misses),
			fmt.Sprintf("%.4f", win.MissRate),
			fmt.Sprintf("%.4f", win.Util),
			fmt.Sprintf("%.4f", win.Headroom),
			fmt.Sprintf("%.1f", win.P99Us),
		})
	}
	cli.WriteCSV(w, []string{
		"from_us", "to_us", "releases", "completions", "misses",
		"miss_rate", "util", "headroom", "p99_us",
	}, rows)
}
