package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"emeralds/internal/core"
	"emeralds/internal/harness"
	"emeralds/internal/task"
	"emeralds/internal/telemetry"
	"emeralds/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// goldenSeries is the reference run: an overloaded EDF task set, so the
// golden locks the FAIL verdict and burn-alert rendering alongside the
// sparklines and window table.
func goldenSeries(t *testing.T) *telemetry.Series {
	t.Helper()
	sys := core.New(core.Config{Policy: core.PolicyEDF})
	sys.AddTask(task.Spec{Name: "a", Period: 10 * vtime.Millisecond, WCET: 4 * vtime.Millisecond})
	sys.AddTask(task.Spec{Name: "b", Period: 20 * vtime.Millisecond, WCET: 9 * vtime.Millisecond})
	sys.AddTask(task.Spec{Name: "c", Period: 50 * vtime.Millisecond, WCET: 16 * vtime.Millisecond})
	rec, err := telemetry.Attach(sys.Kernel(), telemetry.Config{Interval: vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	sys.Run(400 * vtime.Millisecond)
	return rec.Series()
}

func renderGolden(t *testing.T) string {
	var sb strings.Builder
	render(&sb, goldenSeries(t), telemetry.SLO{}, 8, "golden")
	return sb.String()
}

// TestGoldenReport locks emstat's text output byte-for-byte.
func TestGoldenReport(t *testing.T) {
	got := renderGolden(t)
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("report differs from golden (rerun with -update after intentional changes)\ngot:\n%s", got)
	}
}

// TestGoldenFindsTrouble: the reference overload must actually trip the
// analysis — otherwise the golden isn't exercising the FAIL paths.
func TestGoldenFindsTrouble(t *testing.T) {
	rep := telemetry.Analyze(goldenSeries(t), telemetry.SLO{})
	if rep.Verdicts[0].Pass {
		t.Error("miss-rate verdict passed on an overloaded task set")
	}
	if len(rep.Alerts) == 0 {
		t.Error("no burn-rate alert on sustained overload")
	}
}

// TestWorkerIndependence: the series, and therefore the rendered
// report, is a pure function of the scenario — identical bytes at any
// GOMAXPROCS.
func TestWorkerIndependence(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	one := renderGolden(t)
	runtime.GOMAXPROCS(8)
	eight := renderGolden(t)
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Error("report bytes differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
}

// TestArtifactRoundTrip: a series written into an artifact and read
// back through loadSeries renders identically to the live series.
func TestArtifactRoundTrip(t *testing.T) {
	s := goldenSeries(t)
	a := harness.NewArtifact("emstat-test", nil, "x", 1, time.Second)
	a.Timeseries = s
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := json.Marshal(loaded)
	lb, _ := json.Marshal(s)
	if string(la) != string(lb) {
		t.Error("series changed across the artifact round trip")
	}
}

func TestLoadSeriesRejectsMissingBlock(t *testing.T) {
	a := harness.NewArtifact("emstat-test", nil, "x", 1, time.Second)
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSeries(path); err == nil {
		t.Error("artifact without a timeseries block accepted")
	}
}

// TestCSVOutput sanity-checks the machine-readable mode.
func TestCSVOutput(t *testing.T) {
	var sb strings.Builder
	writeCSV(&sb, goldenSeries(t), 8)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("CSV has %d lines, want header + 8 windows:\n%s", len(lines), sb.String())
	}
	want := len(strings.Split(lines[0], ","))
	for i, l := range lines {
		if got := len(strings.Split(l, ",")); got != want {
			t.Errorf("CSV line %d has %d fields, want %d: %q", i, got, want, l)
		}
	}
}
