// Command csdsearch runs the §5.5.3 off-line queue-partition search on
// a random workload: it reports the best feasible allocation of tasks
// to the DP and FP queues and the scheduler-overhead fraction of each
// candidate count. The paper notes the three-queue search is O(n²) and
// took 2–3 minutes for 100 tasks on a 167 MHz Ultra-1.
//
//	csdsearch -n 100 -u 0.7 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emeralds/internal/analysis"
	"emeralds/internal/cli"
	"emeralds/internal/costmodel"
	"emeralds/internal/task"
	"emeralds/internal/workload"
)

func main() {
	c := cli.Register("csdsearch")
	n := flag.Int("n", 100, "number of tasks")
	u := flag.Float64("u", 0.7, "raw workload utilization")
	div := flag.Int("div", 1, "period divisor")
	queues := flag.Int("queues", 3, "CSD queue count x")
	c.Parse()

	prof := costmodel.M68040()
	specs := workload.Generate(workload.Config{
		N: *n, Utilization: *u, PeriodDiv: *div, Seed: c.Seed,
	})
	rmSorted := analysis.SortRM(specs)

	start := time.Now()
	part, score, ok := analysis.BestPartition(prof, rmSorted, *queues)
	elapsed := time.Since(start)
	candidates := len(analysis.Candidates(*queues, *n))

	// EDF/RM overhead fractions for comparison.
	edf := analysis.EDFOverheads(prof, *n).PerPeriod()
	rm := analysis.RMOverheads(prof, *n).PerPeriod()
	var edfFrac, rmFrac float64
	for _, s := range rmSorted {
		edfFrac += float64(edf) / float64(s.Period)
		rmFrac += float64(rm) / float64(s.Period)
	}

	type config struct {
		N      int     `json:"n"`
		U      float64 `json:"u"`
		Div    int     `json:"period_div"`
		Seed   int64   `json:"seed"`
		Queues int     `json:"queues"`
	}
	type series struct {
		Feasible         bool    `json:"feasible"`
		DPSizes          []int   `json:"dp_sizes,omitempty"`
		FPTasks          int     `json:"fp_tasks"`
		OverheadFraction float64 `json:"overhead_fraction"`
		Candidates       int     `json:"candidates"`
		EDFFraction      float64 `json:"edf_fraction"`
		RMFraction       float64 `json:"rm_fraction"`
	}
	emit := func(s series) {
		c.EmitArtifact(config{*n, *u, *div, c.Seed, *queues}, s)
	}

	if !ok {
		fmt.Printf("no feasible CSD-%d partition (searched %d candidates in %v)\n",
			*queues, candidates, elapsed)
		emit(series{Feasible: false, FPTasks: *n, Candidates: candidates,
			EDFFraction: edfFrac, RMFraction: rmFrac})
		os.Exit(1)
	}

	if c.CSV {
		cli.WriteCSV(os.Stdout,
			[]string{"queues", "n", "dp_sizes", "fp_tasks", "overhead_fraction", "edf_fraction", "rm_fraction"},
			[][]string{{
				fmt.Sprint(*queues), fmt.Sprint(*n),
				fmt.Sprintf("%v", part.DPSizes), fmt.Sprint(*n - part.DPTotal()),
				fmt.Sprintf("%.4f", score), fmt.Sprintf("%.4f", edfFrac), fmt.Sprintf("%.4f", rmFrac),
			}})
	} else {
		fmt.Printf("workload: n=%d U=%.3f periods ÷%d seed=%d\n",
			*n, task.TotalUtilization(specs), *div, c.Seed)
		fmt.Printf("best CSD-%d partition: DP sizes %v, FP %d tasks\n",
			*queues, part.DPSizes, *n-part.DPTotal())
		fmt.Printf("scheduler overhead fraction: %.4f of CPU\n", score)
		fmt.Printf("candidates searched: %d in %v (wall clock)\n", candidates, elapsed)
		fmt.Printf("for comparison: EDF overhead fraction %.4f, RM %.4f\n", edfFrac, rmFrac)
	}
	emit(series{Feasible: true, DPSizes: part.DPSizes, FPTasks: *n - part.DPTotal(),
		OverheadFraction: score, Candidates: candidates,
		EDFFraction: edfFrac, RMFraction: rmFrac})
}
