// Command csdsearch runs the §5.5.3 off-line queue-partition search on
// a random workload: it reports the best feasible allocation of tasks
// to the DP and FP queues and the scheduler-overhead fraction of each
// candidate count. The paper notes the three-queue search is O(n²) and
// took 2–3 minutes for 100 tasks on a 167 MHz Ultra-1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emeralds/internal/analysis"
	"emeralds/internal/costmodel"
	"emeralds/internal/task"
	"emeralds/internal/workload"
)

func main() {
	n := flag.Int("n", 100, "number of tasks")
	u := flag.Float64("u", 0.7, "raw workload utilization")
	div := flag.Int("div", 1, "period divisor")
	seed := flag.Int64("seed", 1, "RNG seed")
	queues := flag.Int("queues", 3, "CSD queue count x")
	flag.Parse()

	prof := costmodel.M68040()
	specs := workload.Generate(workload.Config{
		N: *n, Utilization: *u, PeriodDiv: *div, Seed: *seed,
	})
	rmSorted := analysis.SortRM(specs)
	fmt.Printf("workload: n=%d U=%.3f periods ÷%d seed=%d\n",
		*n, task.TotalUtilization(specs), *div, *seed)

	start := time.Now()
	part, score, ok := analysis.BestPartition(prof, rmSorted, *queues)
	elapsed := time.Since(start)
	if !ok {
		fmt.Printf("no feasible CSD-%d partition (searched %d candidates in %v)\n",
			*queues, len(analysis.Candidates(*queues, *n)), elapsed)
		os.Exit(1)
	}
	fmt.Printf("best CSD-%d partition: DP sizes %v, FP %d tasks\n",
		*queues, part.DPSizes, *n-part.DPTotal())
	fmt.Printf("scheduler overhead fraction: %.4f of CPU\n", score)
	fmt.Printf("candidates searched: %d in %v (wall clock)\n",
		len(analysis.Candidates(*queues, *n)), elapsed)

	// Compare against the other policies' overhead fractions.
	edf := analysis.EDFOverheads(prof, *n).PerPeriod()
	rm := analysis.RMOverheads(prof, *n).PerPeriod()
	var edfFrac, rmFrac float64
	for _, s := range rmSorted {
		edfFrac += float64(edf) / float64(s.Period)
		rmFrac += float64(rm) / float64(s.Period)
	}
	fmt.Printf("for comparison: EDF overhead fraction %.4f, RM %.4f\n", edfFrac, rmFrac)
}
