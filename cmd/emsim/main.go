// Command emsim boots an EMERALDS system on a random or built-in
// workload, runs it for a span of virtual time, and prints the
// schedule trace and per-task report — the quickest way to watch the
// kernel work.
//
//	emsim                          # Table 2 workload on CSD-3, 1 s
//	emsim -policy rm -trace 40     # watch RM drop τ₅ (first 40 events)
//	emsim -n 12 -u 0.8 -seed 7     # random 12-task workload
//	emsim -attrib                  # latency-attribution report from the trace
//	emsim -json                    # versioned artifact in results/
package main

import (
	"flag"
	"fmt"
	"os"

	"emeralds/internal/attrib"
	"emeralds/internal/cli"
	"emeralds/internal/kernel"
	"emeralds/internal/task"
	"emeralds/internal/telemetry"
	"emeralds/internal/trace"
	"emeralds/internal/vtime"
	"emeralds/internal/workload"
)

func main() {
	c := cli.Register("emsim")
	f := c.SimFlags()
	policy := flag.String("policy", "csd", "scheduler: csd, edf, rm, rm-heap, fp")
	queues := flag.Int("queues", 3, "CSD queue count")
	n := flag.Int("n", 0, "random workload size (0 = use the Table 2 workload)")
	u := flag.Float64("u", 0.7, "random workload utilization")
	div := flag.Int("div", 1, "period divisor")
	ms := flag.Float64("ms", 1000, "virtual milliseconds to run")
	traceN := flag.Int("trace", 0, "print the last N trace events")
	gantt := flag.Float64("gantt", 0, "render an ASCII Gantt chart of the first N virtual milliseconds")
	attribFlag := flag.Bool("attrib", false, "print the latency-attribution report and embed it in the -json artifact")
	standard := flag.Bool("standard-sem", false, "use the standard §6.1 semaphore scheme")
	teleFlag := flag.Bool("telemetry", false, "print the telemetry summary (sparklines, SLO verdicts, change points); implies a default -sample-us")
	c.Parse()
	if *teleFlag && f.SampleUs == 0 {
		// Default cadence: 512 samples across the run.
		f.SampleUs = *ms * 1000 / 512
	}

	cfg := f.Config()
	cfg.Policy = *policy
	cfg.Queues = *queues
	cfg.StandardSem = *standard
	cfg.RecordResponses = true
	cfg.TraceCapacity = max(cfg.TraceCapacity, *traceN, 1)
	if *gantt > 0 {
		cfg.TraceCapacity = max(cfg.TraceCapacity, 1<<16)
	}
	if *attribFlag {
		// The attribution replay wants the whole run, not the tail of a
		// small ring.
		cfg.TraceCapacity = max(cfg.TraceCapacity, 1<<20)
	}

	var specs []task.Spec
	if *n > 0 {
		specs = workload.Generate(workload.Config{N: *n, Utilization: *u, PeriodDiv: *div, Seed: c.Seed})
	} else {
		specs = workload.Table2()
	}
	sys, err := kernel.Boot(cfg, func(sys *kernel.Node) error {
		for _, s := range specs {
			sys.AddTask(s)
		}
		return f.Observe(sys)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsim:", err)
		os.Exit(1)
	}
	sys.Run(vtime.Millis(*ms))

	if err := f.Finish(sys); err != nil {
		fmt.Fprintln(os.Stderr, "emsim:", err)
		os.Exit(1)
	}
	if rec := f.Recorder(); rec != nil && *teleFlag {
		telemetry.Analyze(c.Timeseries, telemetry.SLO{}).
			RenderText(os.Stdout, c.Timeseries, "emsim")
		fmt.Println()
	}

	if *traceN > 0 {
		evs := sys.Trace().Events()
		if len(evs) > *traceN {
			evs = evs[len(evs)-*traceN:]
		}
		for _, e := range evs {
			fmt.Println(e)
		}
		fmt.Println()
	}
	if *gantt > 0 {
		fmt.Println("Gantt (█ running, ░ ready, · blocked):")
		fmt.Print(sys.Trace().Gantt(trace.GanttConfig{
			To: vtime.Time(vtime.Millis(*gantt)),
		}))
		fmt.Println()
	}
	if *attribFlag {
		an, err := attrib.Analyze(sys.Trace().Events(), sys.Trace().Dropped())
		if err != nil {
			fmt.Fprintln(os.Stderr, "emsim:", err)
			os.Exit(1)
		}
		c.Attribution = an.Report()
		c.Attribution.RenderText(os.Stdout, "emsim live trace")
		fmt.Println()
	}

	type taskRow struct {
		Name        string         `json:"name"`
		Period      vtime.Duration `json:"period_us"`
		Releases    uint64         `json:"releases"`
		Completions uint64         `json:"completions"`
		Misses      uint64         `json:"misses"`
		Preemptions uint64         `json:"preemptions"`
		AvgResp     vtime.Duration `json:"avg_resp_us"`
		MaxResp     vtime.Duration `json:"max_resp_us"`
	}
	var tasks []taskRow
	for _, th := range sys.Kernel().Threads() {
		t := th.TCB
		tasks = append(tasks, taskRow{
			Name: t.Name, Period: t.Spec.Period,
			Releases: t.Releases, Completions: t.Completions,
			Misses: t.Misses, Preemptions: t.Preemptions,
			AvgResp: t.AvgResp(), MaxResp: t.MaxResp,
		})
	}

	if c.CSV {
		var rows [][]string
		for _, tr := range tasks {
			rows = append(rows, []string{
				tr.Name, fmt.Sprintf("%.1f", tr.Period.Micros()),
				fmt.Sprint(tr.Releases), fmt.Sprint(tr.Completions),
				fmt.Sprint(tr.Misses), fmt.Sprint(tr.Preemptions),
				fmt.Sprintf("%.2f", tr.AvgResp.Micros()), fmt.Sprintf("%.2f", tr.MaxResp.Micros()),
			})
		}
		cli.WriteCSV(os.Stdout,
			[]string{"task", "period_us", "releases", "completions", "misses", "preemptions", "avg_resp_us", "max_resp_us"},
			rows)
	} else {
		fmt.Print(sys.Report())
	}

	type config struct {
		Policy string  `json:"policy"`
		Queues int     `json:"queues"`
		N      int     `json:"n"`
		U      float64 `json:"u"`
		Div    int     `json:"period_div"`
		Seed   int64   `json:"seed"`
		Millis float64 `json:"run_ms"`
		StdSem bool    `json:"standard_sem"`
		// Zero-valued on single-CPU runs so pre-multicore artifacts keep
		// their exact bytes.
		CPUs int    `json:"cpus,omitempty"`
		Lock string `json:"lock,omitempty"`
	}
	type series struct {
		Stats kernel.Stats `json:"stats"`
		Tasks []taskRow    `json:"tasks"`
	}
	cpus, lock := c.MulticoreConfig()
	c.Diagnostics = sys.Kernel().Diagnostics()
	c.EmitArtifact(
		config{*policy, *queues, *n, *u, *div, c.Seed, *ms, *standard, cpus, lock},
		series{sys.Stats(), tasks})
}
