// Command emsim boots an EMERALDS system on a random or built-in
// workload, runs it for a span of virtual time, and prints the
// schedule trace and per-task report — the quickest way to watch the
// kernel work.
//
//	emsim                          # Table 2 workload on CSD-3, 1 s
//	emsim -policy rm -trace 40     # watch RM drop τ₅ (first 40 events)
//	emsim -n 12 -u 0.8 -seed 7     # random 12-task workload
package main

import (
	"flag"
	"fmt"
	"os"

	"emeralds/internal/core"
	"emeralds/internal/task"
	"emeralds/internal/trace"
	"emeralds/internal/vtime"
	"emeralds/internal/workload"
)

func main() {
	policy := flag.String("policy", "csd", "scheduler: csd, edf, rm, rm-heap")
	queues := flag.Int("queues", 3, "CSD queue count")
	n := flag.Int("n", 0, "random workload size (0 = use the Table 2 workload)")
	u := flag.Float64("u", 0.7, "random workload utilization")
	div := flag.Int("div", 1, "period divisor")
	seed := flag.Int64("seed", 1, "RNG seed")
	ms := flag.Float64("ms", 1000, "virtual milliseconds to run")
	traceN := flag.Int("trace", 0, "print the last N trace events")
	gantt := flag.Float64("gantt", 0, "render an ASCII Gantt chart of the first N virtual milliseconds")
	standard := flag.Bool("standard-sem", false, "use the standard §6.1 semaphore scheme")
	flag.Parse()

	traceCap := maxInt(*traceN, 1)
	if *gantt > 0 {
		traceCap = maxInt(traceCap, 1<<16)
	}
	sys := core.New(core.Config{
		Policy:        core.Policy(*policy),
		Queues:        *queues,
		StandardSem:   *standard,
		TraceCapacity: traceCap,
	})

	var specs []task.Spec
	if *n > 0 {
		specs = workload.Generate(workload.Config{N: *n, Utilization: *u, PeriodDiv: *div, Seed: *seed})
	} else {
		specs = workload.Table2()
	}
	for _, s := range specs {
		sys.AddTask(s)
	}
	if err := sys.Boot(); err != nil {
		fmt.Fprintln(os.Stderr, "emsim:", err)
		os.Exit(1)
	}
	sys.Run(vtime.Millis(*ms))

	if *traceN > 0 {
		evs := sys.Trace().Events()
		if len(evs) > *traceN {
			evs = evs[len(evs)-*traceN:]
		}
		for _, e := range evs {
			fmt.Println(e)
		}
		fmt.Println()
	}
	if *gantt > 0 {
		fmt.Println("Gantt (█ running, ░ ready, · blocked):")
		fmt.Print(sys.Trace().Gantt(trace.GanttConfig{
			To: vtime.Time(vtime.Millis(*gantt)),
		}))
		fmt.Println()
	}
	fmt.Print(sys.Report())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
