// Command emfuzz runs a property-based fuzzing campaign over randomly
// generated scenarios: every policy, both semaphore schemes, and
// M ∈ {1,2,4} unless -cpus pins one, with five oracles checked per
// trace (differential feasibility, attribution residual, priority
// inversion, kernel invariants, IPC synchronizability). Violations are
// minimized into self-contained repro files and the exit status is 1,
// so the command doubles as a CI gate.
//
//	emfuzz -scenarios 1000 -seed 1     # the PR acceptance run
//	emfuzz -scenarios 50 -cpus 4       # pin quad-core scenarios
//	emfuzz -json                       # emeralds.fuzz/v1 artifact
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"emeralds/internal/cli"
	"emeralds/internal/harness"
	"emeralds/internal/scenario"
)

func main() {
	c := cli.Register("emfuzz")
	f := c.SimFlags()
	scenarios := flag.Int("scenarios", 200, "number of scenarios to generate and run")
	minimize := flag.Bool("minimize", true, "delta-debug each violation into a minimal repro")
	reproDir := flag.String("repro-dir", "results/repros", "directory for violation repro files")
	metricsAddr := flag.String("metrics-addr", "", "serve live OpenMetrics on this address (/metrics, /debug/pprof) while the campaign runs")
	start := time.Now()
	c.Parse()
	if *scenarios < 1 {
		c.Fatalf("bad -scenarios: %d (want ≥ 1)", *scenarios)
	}
	// The shared -cpus flag defaults to 1, but the campaign's default is
	// the full mix M ∈ {1,2,4}; only an explicit -cpus pins the count.
	cpus := 0
	if cli.Explicit("cpus") {
		cpus = c.CPUs
	}
	// Likewise -lock: the campaign's default mixes every regime on
	// multicore scenarios; an explicit -lock pins them all to one.
	lock := ""
	if cli.Explicit("lock") {
		lock = c.Lock
	}

	var scrape *harness.Scrape
	if *metricsAddr != "" {
		var err error
		scrape, err = harness.NewScrape(*metricsAddr)
		if err != nil {
			c.Fatalf("%v", err)
		}
		defer scrape.Close()
		if !c.Quiet {
			fmt.Fprintf(os.Stderr, "emfuzz: serving OpenMetrics on http://%s/metrics (pprof under /debug/pprof/)\n", scrape.Addr())
		}
	}

	rep, err := scenario.RunCampaign(context.Background(), scenario.CampaignConfig{
		Scenarios: *scenarios,
		BaseSeed:  c.Seed,
		CPUs:      cpus,
		Lock:      lock,
		Workers:   c.Workers,
		Minimize:  *minimize,
		SampleUs:  f.SampleUs,
		Progress:  c.Progress(),
		Scrape:    scrape,
	})
	if err != nil {
		c.Fatalf("campaign: %v", err)
	}

	var repros []string
	for i, v := range rep.Violations {
		s := v.Minimized
		if s == nil {
			s = v.Scenario
		}
		path := filepath.Join(*reproDir,
			fmt.Sprintf("emfuzz-s%d-i%d-%s.json", c.Seed, v.Scenario.Index, v.Finding.Oracle))
		if err := os.MkdirAll(*reproDir, 0o755); err != nil {
			c.Fatalf("writing repros: %v", err)
		}
		if err := scenario.WriteRepro(s, path); err != nil {
			c.Fatalf("writing repro %d: %v", i, err)
		}
		repros = append(repros, path)
	}

	// -trace-out exports the first violation's replay for visual triage;
	// a clean campaign has no schedule worth exporting.
	if f.TraceOut != "" {
		if len(rep.Violations) == 0 {
			if !c.Quiet {
				fmt.Fprintln(os.Stderr, "emfuzz: -trace-out: no oracle violations; nothing exported")
			}
		} else {
			v := rep.Violations[0]
			s := v.Minimized
			if s == nil {
				s = v.Scenario
			}
			w, err := os.Create(f.TraceOut)
			if err != nil {
				c.Fatalf("-trace-out: %v", err)
			}
			if err := scenario.ExportTrace(s, w); err != nil {
				w.Close()
				c.Fatalf("-trace-out: %v", err)
			}
			if err := w.Close(); err != nil {
				c.Fatalf("-trace-out: %v", err)
			}
			if !c.Quiet {
				fmt.Fprintf(os.Stderr, "emfuzz: wrote %s (scenario %d replay)\n", f.TraceOut, v.Scenario.Index)
			}
		}
	}

	var out strings.Builder
	render(&out, c, rep, cpus, repros)
	fmt.Print(out.String())
	c.EmitText(out.String())

	type config struct {
		Scenarios int     `json:"scenarios"`
		Seed      int64   `json:"seed"`
		CPUs      int     `json:"cpus"` // 0 = mixed M ∈ {1,2,4}
		Lock      string  `json:"lock,omitempty"`
		SampleUs  float64 `json:"sample_us,omitempty"`
		Minimize  bool    `json:"minimize"`
		ReproDir  string  `json:"repro_dir,omitempty"`
	}
	if c.JSON {
		a := harness.NewArtifact(c.Tool, config{*scenarios, c.Seed, cpus, lock, f.SampleUs, *minimize, *reproDir},
			rep, c.EffectiveWorkers(), time.Since(start))
		a.Schema = harness.FuzzSchema
		path := c.ArtifactPath()
		if err := a.WriteFile(path); err != nil {
			c.Fatalf("writing artifact: %v", err)
		}
		if !c.Quiet {
			fmt.Fprintf(os.Stderr, "emfuzz: wrote %s\n", path)
		}
	}

	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

func render(out *strings.Builder, c *cli.Common, rep *scenario.CampaignReport, cpus int, repros []string) {
	if c.CSV {
		rows := [][]string{
			{"scenarios", fmt.Sprint(rep.Scenarios)},
			{"clean", fmt.Sprint(rep.Clean)},
			{"feasible", fmt.Sprint(rep.Feasible)},
			{"completions", fmt.Sprint(rep.Completions)},
			{"misses", fmt.Sprint(rep.Misses)},
			{"violations", fmt.Sprint(len(rep.Violations))},
		}
		for _, k := range rep.KindOrder() {
			rows = append(rows, []string{"kind:" + k, fmt.Sprint(rep.PerKind[k])})
		}
		for _, o := range rep.OracleOrder() {
			rows = append(rows, []string{"oracle:" + o, fmt.Sprint(rep.PerOracle[o])})
		}
		rows = append(rows, []string{"anomalous", fmt.Sprint(rep.Anomalous)})
		classes := rep.AnomalyClasses()
		for _, cl := range sortedKeys(classes) {
			rows = append(rows, []string{"anomaly:" + cl, fmt.Sprint(classes[cl])})
		}
		cli.WriteCSV(out, []string{"metric", "value"}, rows)
		return
	}

	mix := "1,2,4 (mixed)"
	if cpus > 0 {
		mix = fmt.Sprint(cpus)
	}
	fmt.Fprintf(out, "emfuzz — %d scenarios, seed %d, M = %s\n\n", rep.Scenarios, c.Seed, mix)
	var rows [][]string
	for _, k := range rep.KindOrder() {
		rows = append(rows, []string{k, fmt.Sprint(rep.PerKind[k])})
	}
	cli.Table(out, []string{"archetype", "scenarios"}, rows)
	fmt.Fprintf(out, "\ndifferential oracle armed on %d scenarios (%d analysis-feasible)\n",
		rep.Clean, rep.Feasible)
	fmt.Fprintf(out, "%d completions, %d deadline misses across the campaign\n",
		rep.Completions, rep.Misses)

	// Per-oracle violation summary — always printed, so a failing
	// campaign leads with the breakdown instead of a bare exit 1.
	fmt.Fprintf(out, "\noracle summary:\n")
	var sum [][]string
	for _, o := range []string{
		scenario.OracleFeasibleMiss, scenario.OracleResidual, scenario.OracleInversion,
		scenario.OracleInvariant, scenario.OracleSync, scenario.OracleTruncated,
		scenario.OraclePanic,
	} {
		sum = append(sum, []string{o, fmt.Sprint(rep.PerOracle[o])})
	}
	cli.Table(out, []string{"oracle", "violations"}, sum)

	if rep.Anomalous > 0 {
		fmt.Fprintf(out, "\ntelemetry annotations (advisory): %d scenarios anomalous\n", rep.Anomalous)
		classes := rep.AnomalyClasses()
		var rows [][]string
		for _, cl := range sortedKeys(classes) {
			rows = append(rows, []string{cl, fmt.Sprint(classes[cl])})
		}
		cli.Table(out, []string{"anomaly", "count"}, rows)
	}

	if len(rep.Violations) == 0 {
		fmt.Fprintf(out, "\nno oracle violations\n")
		return
	}
	fmt.Fprintf(out, "\n%d ORACLE VIOLATIONS\n", len(rep.Violations))
	anomalous := map[int]string{}
	for _, a := range rep.Anomalies {
		if _, ok := anomalous[a.Index]; !ok {
			anomalous[a.Index] = a.Detail
		}
	}
	for i, v := range rep.Violations {
		min := ""
		if v.Minimized != nil {
			min = fmt.Sprintf(" (minimized to %d tasks, %v)",
				len(v.Minimized.Tasks), v.Minimized.Horizon)
		}
		fmt.Fprintf(out, "  scenario %d [%s, %s, M=%d]: %s: %s%s\n",
			v.Scenario.Index, v.Scenario.Name, v.Scenario.Policy, max(1, v.Scenario.CPUs),
			v.Finding.Oracle, v.Finding.Detail, min)
		if a, ok := anomalous[v.Scenario.Index]; ok {
			fmt.Fprintf(out, "    telemetry: %s\n", a)
		}
		if i < len(repros) {
			fmt.Fprintf(out, "    repro: %s\n", repros[i])
		}
	}
}

// sortedKeys returns a map's keys in lexical order for deterministic
// rendering.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
