// Command breakdown regenerates Figures 3–5 of the paper: average
// breakdown utilization versus task count for RM, EDF, CSD-2, CSD-3
// and CSD-4, at the three period scalings. The sweep fans out over
// all CPUs; the series are identical for any -workers value.
//
//	breakdown -div 1            # Figure 3 (base periods, 5 ms – 1 s)
//	breakdown -div 2            # Figure 4 (periods halved)
//	breakdown -div 3            # Figure 5 (periods ÷3)
//	breakdown -workloads 500    # the paper's sample size
//	breakdown -csv              # machine-readable stdout
//	breakdown -json             # versioned artifact in results/
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"emeralds/internal/cli"
	"emeralds/internal/costmodel"
	"emeralds/internal/experiments"
	"emeralds/internal/vtime"
)

func main() {
	c := cli.Register("breakdown")
	div := flag.Int("div", 1, "divide task periods by this factor (1, 2, 3)")
	workloads := flag.Int("workloads", 100, "random workloads per point (paper: 500)")
	ns := flag.String("n", "", "comma-separated task counts (default 5..50 step 5)")
	simulate := flag.Bool("sim", false, "cross-check EDF/RM points by simulation-driven breakdown (slow; horizon 2 s)")
	c.Parse()

	// One profile drives everything: the analytic sweep and, under
	// -sim, the simulation cross-check (which previously defaulted to
	// its own profile while the sweep used another).
	prof := costmodel.M68040()
	cfg := experiments.BreakdownConfig{
		PeriodDiv: *div,
		Workloads: *workloads,
		Seed:      c.Seed,
		Profile:   prof,
		Par:       experiments.Par{Workers: c.Workers, Progress: c.Progress()},
	}
	if *ns != "" {
		cfg.Ns = c.Ints("n", *ns, 1)
	}
	res := experiments.BreakdownFigure(cfg)

	if c.CSV {
		header := append([]string{"n"}, res.Cfg.Schedulers...)
		var rows [][]string
		for i, n := range res.Ns {
			row := []string{strconv.Itoa(n)}
			for _, s := range res.Cfg.Schedulers {
				row = append(row, fmt.Sprintf("%.2f", res.Series[s][i]))
			}
			rows = append(rows, row)
		}
		cli.WriteCSV(os.Stdout, header, rows)
	} else {
		fig := map[int]string{1: "Figure 3", 2: "Figure 4", 3: "Figure 5"}[*div]
		if fig == "" {
			fig = fmt.Sprintf("periods ÷%d", *div)
		}
		fmt.Printf("%s — %s", fig, res.Render())
	}

	var sim []experiments.CompareSweepPoint
	if *simulate {
		sim = experiments.CompareSweep(prof, res.Ns, *div, c.Seed, 2*vtime.Second, cfg.Par)
		if !c.CSV {
			fmt.Println("\nsimulation cross-check (workload 0 of each n, horizon 2 s):")
			fmt.Printf("%6s %12s %12s %12s %12s\n", "n", "EDF-analytic", "EDF-sim", "RM-analytic", "RM-sim")
			for _, pt := range sim {
				fmt.Printf("%6d %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
					pt.N, 100*pt.Cmps[0].Analytic, 100*pt.Cmps[0].Simulated,
					100*pt.Cmps[1].Analytic, 100*pt.Cmps[1].Simulated)
			}
		}
	}

	type config struct {
		PeriodDiv  int      `json:"period_div"`
		Workloads  int      `json:"workloads"`
		Seed       int64    `json:"seed"`
		Schedulers []string `json:"schedulers"`
		Profile    string   `json:"profile"`
	}
	type series struct {
		Ns           []int                           `json:"ns"`
		BreakdownPct map[string][]float64            `json:"breakdown_pct"`
		SimCheck     []experiments.CompareSweepPoint `json:"sim_crosscheck,omitempty"`
	}
	c.EmitArtifact(
		config{*div, res.Cfg.Workloads, c.Seed, res.Cfg.Schedulers, prof.Name},
		series{res.Ns, res.Series, sim})
}
