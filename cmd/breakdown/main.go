// Command breakdown regenerates Figures 3–5 of the paper: average
// breakdown utilization versus task count for RM, EDF, CSD-2, CSD-3
// and CSD-4, at the three period scalings.
//
//	breakdown -div 1            # Figure 3 (base periods, 5 ms – 1 s)
//	breakdown -div 2            # Figure 4 (periods halved)
//	breakdown -div 3            # Figure 5 (periods ÷3)
//	breakdown -workloads 500    # the paper's sample size
//	breakdown -csv              # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emeralds/internal/experiments"
	"emeralds/internal/vtime"
	"emeralds/internal/workload"
)

func main() {
	div := flag.Int("div", 1, "divide task periods by this factor (1, 2, 3)")
	workloads := flag.Int("workloads", 100, "random workloads per point (paper: 500)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	ns := flag.String("n", "", "comma-separated task counts (default 5..50 step 5)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	simulate := flag.Bool("sim", false, "cross-check EDF/RM points by simulation-driven breakdown (slow; harmonic horizon 400 ms)")
	flag.Parse()

	cfg := experiments.BreakdownConfig{
		PeriodDiv: *div,
		Workloads: *workloads,
		Seed:      *seed,
	}
	if *ns != "" {
		for _, f := range strings.Split(*ns, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "breakdown: bad -n entry %q\n", f)
				os.Exit(2)
			}
			cfg.Ns = append(cfg.Ns, v)
		}
	}
	res := experiments.BreakdownFigure(cfg)
	if *csv {
		fmt.Printf("n,%s\n", strings.Join(res.Cfg.Schedulers, ","))
		for i, n := range res.Ns {
			row := []string{strconv.Itoa(n)}
			for _, s := range res.Cfg.Schedulers {
				row = append(row, fmt.Sprintf("%.2f", res.Series[s][i]))
			}
			fmt.Println(strings.Join(row, ","))
		}
		return
	}
	fig := map[int]string{1: "Figure 3", 2: "Figure 4", 3: "Figure 5"}[*div]
	if fig == "" {
		fig = fmt.Sprintf("periods ÷%d", *div)
	}
	fmt.Printf("%s — %s", fig, res.Render())

	if *simulate {
		fmt.Println("\nsimulation cross-check (one workload per n, horizon 2 s):")
		fmt.Printf("%6s %12s %12s %12s %12s\n", "n", "EDF-analytic", "EDF-sim", "RM-analytic", "RM-sim")
		for _, n := range res.Ns {
			specs := workload.Generate(workload.Config{
				N: n, PeriodDiv: *div, Utilization: 0.5, Seed: *seed,
			})
			cmps := experiments.CompareBreakdowns(nil, specs, 2*vtime.Second)
			fmt.Printf("%6d %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
				n, 100*cmps[0].Analytic, 100*cmps[0].Simulated,
				100*cmps[1].Analytic, 100*cmps[1].Simulated)
		}
	}
}
