// Command sembench regenerates Figures 11 and 12 of the paper:
// semaphore acquire/release overhead versus scheduler queue length,
// standard implementation versus the EMERALDS optimized scheme.
//
//	sembench -queue dp    # Figure 11: the EDF/DP queue
//	sembench -queue fp    # Figure 12: the RM/FP queue
//	sembench              # both
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emeralds/internal/experiments"
)

func main() {
	queue := flag.String("queue", "both", "which queue to exercise: dp, fp, both")
	lens := flag.String("len", "3,6,9,12,15,18,21,24,27,30", "comma-separated queue lengths")
	flag.Parse()

	var ls []int
	for _, f := range strings.Split(*lens, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 3 {
			fmt.Fprintf(os.Stderr, "sembench: bad -len entry %q (minimum 3)\n", f)
			os.Exit(2)
		}
		ls = append(ls, v)
	}

	show := func(kind experiments.SemQueueKind, figure string) {
		pts := experiments.SemOverheadCurve(kind, ls, nil)
		fmt.Printf("%s — semaphore acquire/release overhead, %s queue\n", figure, strings.ToUpper(string(kind)))
		fmt.Printf("%10s %14s %14s %10s\n", "queue len", "standard", "optimized", "saving")
		for _, p := range pts {
			fmt.Printf("%10d %14v %14v %9.0f%%\n", p.QueueLen, p.Standard, p.Optimized, p.SavingPct())
		}
		fmt.Println()
	}
	switch *queue {
	case "dp":
		show(experiments.DPQueue, "Figure 11")
	case "fp":
		show(experiments.FPQueue, "Figure 12")
	case "both":
		show(experiments.DPQueue, "Figure 11")
		show(experiments.FPQueue, "Figure 12")
	default:
		fmt.Fprintf(os.Stderr, "sembench: unknown -queue %q\n", *queue)
		os.Exit(2)
	}
}
