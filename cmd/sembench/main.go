// Command sembench regenerates Figures 11 and 12 of the paper:
// semaphore acquire/release overhead versus scheduler queue length,
// standard implementation versus the EMERALDS optimized scheme.
//
//	sembench -queue dp    # Figure 11: the EDF/DP queue
//	sembench -queue fp    # Figure 12: the RM/FP queue
//	sembench              # both
//	sembench -json        # versioned artifact in results/
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"emeralds/internal/cli"
	"emeralds/internal/experiments"
)

func main() {
	c := cli.Register("sembench")
	queue := flag.String("queue", "both", "which queue to exercise: dp, fp, both")
	lens := flag.String("len", "3,6,9,12,15,18,21,24,27,30", "comma-separated queue lengths (minimum 3)")
	c.Parse()
	ls := c.Ints("len", *lens, 3)
	par := experiments.Par{Workers: c.Workers, Progress: c.Progress()}

	var kinds []experiments.SemQueueKind
	switch *queue {
	case "dp":
		kinds = []experiments.SemQueueKind{experiments.DPQueue}
	case "fp":
		kinds = []experiments.SemQueueKind{experiments.FPQueue}
	case "both":
		kinds = []experiments.SemQueueKind{experiments.DPQueue, experiments.FPQueue}
	default:
		c.Fatalf("unknown -queue %q", *queue)
	}

	figures := map[experiments.SemQueueKind]string{
		experiments.DPQueue: "Figure 11",
		experiments.FPQueue: "Figure 12",
	}
	series := map[string][]experiments.SemPoint{}
	var csvRows [][]string
	for _, kind := range kinds {
		pts, diag := experiments.SemOverheadCurveDiag(kind, ls, nil, par)
		series[string(kind)] = pts
		if c.Diagnostics == nil {
			c.Diagnostics = diag
		} else {
			c.Diagnostics.Merge(diag)
		}
		if c.CSV {
			for _, p := range pts {
				csvRows = append(csvRows, []string{
					string(kind), fmt.Sprint(p.QueueLen),
					fmt.Sprintf("%.2f", p.Standard.Micros()),
					fmt.Sprintf("%.2f", p.Optimized.Micros()),
					fmt.Sprintf("%.1f", p.SavingPct()),
				})
			}
			continue
		}
		fmt.Printf("%s — semaphore acquire/release overhead, %s queue\n",
			figures[kind], strings.ToUpper(string(kind)))
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprint(p.QueueLen),
				p.Standard.String(), p.Optimized.String(),
				fmt.Sprintf("%.0f%%", p.SavingPct()),
			})
		}
		cli.Table(os.Stdout, []string{"queue len", "standard", "optimized", "saving"}, rows)
		fmt.Println()
	}
	if c.CSV {
		cli.WriteCSV(os.Stdout, []string{"queue", "len", "standard_us", "optimized_us", "saving_pct"}, csvRows)
	}

	type config struct {
		Queue string `json:"queue"`
		Lens  []int  `json:"lens"`
	}
	c.EmitArtifact(config{*queue, ls}, series)
}
