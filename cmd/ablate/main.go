// Command ablate runs the design-choice ablations of DESIGN.md §6:
// the §6.2 semaphore optimization split into its hint and place-holder
// halves, and the §5.3 CSD ready counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emeralds/internal/experiments"
)

func main() {
	lens := flag.String("len", "5,10,15,20,25,30", "queue lengths for the semaphore ablation")
	flag.Parse()

	var ls []int
	for _, f := range strings.Split(*lens, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 3 {
			fmt.Fprintf(os.Stderr, "ablate: bad -len entry %q\n", f)
			os.Exit(2)
		}
		ls = append(ls, v)
	}

	for _, kind := range []experiments.SemQueueKind{experiments.DPQueue, experiments.FPQueue} {
		fmt.Print(experiments.RenderSemAblation(kind, experiments.SemAblation(kind, ls, nil)))
		fmt.Println()
	}

	with, without := experiments.CSDCounterAblation(nil)
	saving := 100 * float64(without-with) / float64(without)
	fmt.Println("CSD ready-counter ablation (total scheduler charge, 2 s run,")
	fmt.Println("8 short DP tasks + 6 long FP tasks — DP queues mostly empty):")
	fmt.Printf("  with counters:    %v\n", with)
	fmt.Printf("  without counters: %v\n", without)
	fmt.Printf("  counters save:    %.0f%%\n", saving)
	fmt.Println()

	pts := experiments.QueueCountSweep(nil, 30, []int{1, 2, 3, 4, 6, 8, 12, 20, 29}, 20, 5)
	fmt.Print(experiments.RenderQueueSweep(30, pts))
}
