// Command ablate runs the design-choice ablations of DESIGN.md §6:
// the §6.2 semaphore optimization split into its hint and place-holder
// halves, the §5.3 CSD ready counters, and the §5.6 CSD-x queue-count
// sweep.
//
//	ablate -len 5,15,30 -json
package main

import (
	"flag"
	"fmt"
	"os"

	"emeralds/internal/cli"
	"emeralds/internal/experiments"
	"emeralds/internal/kernel"
	"emeralds/internal/vtime"
)

func main() {
	c := cli.Register("ablate")
	f := c.SimFlags()
	lens := flag.String("len", "5,10,15,20,25,30", "queue lengths for the semaphore ablation (minimum 3)")
	sweepN := flag.Int("sweep-n", 30, "task count for the queue-count sweep")
	sweepCount := flag.Int("sweep-workloads", 20, "workloads per queue-count point")
	lockCPUs := flag.String("lock-cpus", "1,2,4", "CPU counts for the lock-granularity grid")
	lockMs := flag.Float64("lock-ms", 1000, "virtual milliseconds per lock-granularity cell")
	c.Parse()
	ls := c.Ints("len", *lens, 3)
	lockMs64 := vtime.Millis(*lockMs)
	lcs := c.Ints("lock-cpus", *lockCPUs, 1)
	// The shared -cpus/-lock flags pin the lock-granularity grid to one
	// row/regime, matching their meaning in emsim/emreport/emfuzz. The
	// defaults leave the full grid.
	if cli.Explicit("cpus") {
		lcs = []int{c.CPUs}
	}
	var regimes []kernel.LockRegime
	if cli.Explicit("lock") {
		r, err := kernel.ParseLockRegime(c.Lock)
		if err != nil {
			c.Fatalf("%v", err)
		}
		regimes = []kernel.LockRegime{r}
	}
	par := experiments.Par{Workers: c.Workers, Progress: c.Progress()}

	semSeries := map[string][]experiments.SemAblationPoint{}
	for _, kind := range []experiments.SemQueueKind{experiments.DPQueue, experiments.FPQueue} {
		pts, diag := experiments.SemAblationDiag(kind, ls, nil, par)
		semSeries[string(kind)] = pts
		if c.Diagnostics == nil {
			c.Diagnostics = diag
		} else {
			c.Diagnostics.Merge(diag)
		}
		if !c.CSV {
			fmt.Print(experiments.RenderSemAblation(kind, pts))
			fmt.Println()
		}
	}

	with, without := experiments.CSDCounterAblation(nil, par)
	saving := 100 * float64(without-with) / float64(without)
	if !c.CSV {
		fmt.Println("CSD ready-counter ablation (total scheduler charge, 2 s run,")
		fmt.Println("8 short DP tasks + 6 long FP tasks — DP queues mostly empty):")
		fmt.Printf("  with counters:    %v\n", with)
		fmt.Printf("  without counters: %v\n", without)
		fmt.Printf("  counters save:    %.0f%%\n", saving)
		fmt.Println()
	}

	lockPts := experiments.LockGrid(lcs, regimes, nil, lockMs64, par)
	if !c.CSV {
		fmt.Print(experiments.RenderLockGranularity(lockMs64, lockPts))
		fmt.Println()
	}

	// -trace-out/-sample-us observe one demonstrative lock cell — the
	// -cpus/-lock configuration — rerun with the flight recorder and
	// trace ring attached; the sampled series lands in the artifact's
	// timeseries block and the trace in the Perfetto export.
	if f.Observing() {
		_, n, err := experiments.LockCellObserved(f.Config(), lockMs64, f.Observe)
		if err != nil {
			c.Fatalf("observed lock cell: %v", err)
		}
		if err := f.Finish(n); err != nil {
			c.Fatalf("observed lock cell: %v", err)
		}
	}

	xs := []int{1, 2, 3, 4, 6, 8, 12, 20, 29}
	sweep := experiments.QueueCountSweep(nil, *sweepN, xs, *sweepCount, c.Seed, par)
	if c.CSV {
		var rows [][]string
		for _, kind := range []string{"dp", "fp"} {
			for _, p := range semSeries[kind] {
				rows = append(rows, []string{"sem-" + kind, fmt.Sprint(p.QueueLen),
					fmt.Sprintf("%.2f", p.Standard.Micros()),
					fmt.Sprintf("%.2f", p.HintOnly.Micros()),
					fmt.Sprintf("%.2f", p.PlaceholderOnly.Micros()),
					fmt.Sprintf("%.2f", p.Full.Micros())})
			}
		}
		for _, p := range lockPts {
			rows = append(rows, []string{"lock-" + p.Regime, fmt.Sprint(p.CPUs),
				fmt.Sprintf("%.2f", p.LockCharge.Micros()),
				fmt.Sprint(p.Contentions),
				fmt.Sprintf("%.2f", p.Overhead.Micros()),
				fmt.Sprint(p.Misses)})
		}
		for _, p := range sweep {
			rows = append(rows, []string{"queue-sweep", fmt.Sprint(p.X),
				fmt.Sprintf("%.2f", p.Breakdown), "", "", ""})
		}
		cli.WriteCSV(os.Stdout,
			[]string{"experiment", "x", "v1", "v2", "v3", "v4"}, rows)
	} else {
		fmt.Print(experiments.RenderQueueSweep(*sweepN, sweep))
	}

	type counterResult struct {
		With    vtime.Duration `json:"with_counters_us"`
		Without vtime.Duration `json:"without_counters_us"`
		SavePct float64        `json:"saving_pct"`
	}
	type config struct {
		Lens       []int   `json:"lens"`
		SweepN     int     `json:"sweep_n"`
		SweepCount int     `json:"sweep_workloads"`
		Seed       int64   `json:"seed"`
		LockCPUs   []int   `json:"lock_cpus"`
		LockMs     float64 `json:"lock_ms"`
	}
	type series struct {
		SemAblation map[string][]experiments.SemAblationPoint `json:"sem_ablation"`
		CSDCounters counterResult                             `json:"csd_counters"`
		QueueSweep  []experiments.QueueSweepPoint             `json:"queue_sweep"`
		LockGrid    []experiments.LockPoint                   `json:"lock_granularity"`
	}
	c.EmitArtifact(
		config{ls, *sweepN, *sweepCount, c.Seed, lcs, *lockMs},
		series{semSeries, counterResult{with, without, saving}, sweep, lockPts})
}
